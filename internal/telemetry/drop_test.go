package telemetry

// The drop-accounting contract: Emitted counts only events that landed
// in the ring, Dropped is the sum of ring overwrites and sink-write
// fault drops, and the retained events' Seq stays gapless through both
// — a dropped write is never sequenced, so trace consumers can treat a
// Seq gap as impossible rather than ambiguous.

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/faults"
)

// TestSinkFaultDropAccounting pins the fault path: the faulted write is
// dropped before sequencing, counted by Dropped and the
// telemetry.sink_errors counter, and invisible to Emitted.
func TestSinkFaultDropAccounting(t *testing.T) {
	r := NewRecorder(8)
	r.AttachFaults(faults.NewInjector().Arm(faults.SiteSinkWrite, 3))
	for i := 0; i < 6; i++ {
		r.ScenarioStep("uc", fmt.Sprintf("line %d", i))
	}
	if got := r.Emitted(); got != 5 {
		t.Errorf("Emitted = %d, want 5 (the faulted write never lands)", got)
	}
	if got := r.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	if got := r.Counter("telemetry.sink_errors"); got != 1 {
		t.Errorf("telemetry.sink_errors = %d, want 1", got)
	}
	if got := r.Counter("scenario.steps"); got != 6 {
		t.Errorf("scenario.steps = %d, want 6 (counters observe the site, not the ring)", got)
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("retained %d events, want 5", len(events))
	}
	wantDetails := []string{"line 0", "line 1", "line 3", "line 4", "line 5"}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Errorf("event %d: Seq = %d, want %d (gapless across the drop)", i, e.Seq, i)
		}
		if e.Detail != wantDetails[i] {
			t.Errorf("event %d: Detail = %q, want %q", i, e.Detail, wantDetails[i])
		}
	}
}

// TestSinkFaultPlusRingWrap checks the two loss mechanisms compose:
// Dropped is overwrites plus sink drops, and Emitted still counts every
// landed event including the overwritten ones.
func TestSinkFaultPlusRingWrap(t *testing.T) {
	r := NewRecorder(4)
	r.AttachFaults(faults.NewInjector().Arm(faults.SiteSinkWrite, 2))
	for i := 0; i < 10; i++ {
		r.ScenarioStep("uc", fmt.Sprintf("line %d", i))
	}
	// 10 writes, 1 faulted: 9 landed, the 4-slot ring retains the last
	// 4, so 5 were overwritten. Dropped = 5 overwrites + 1 sink drop.
	if got := r.Emitted(); got != 9 {
		t.Errorf("Emitted = %d, want 9", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6 (5 overwrites + 1 sink drop)", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(5 + i); e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first, gapless)", i, e.Seq, want)
		}
	}
	if got := r.Counter("scenario.steps"); got != 10 {
		t.Errorf("scenario.steps = %d, want 10", got)
	}
}

// TestCoverageUnperturbedBySinkFaults pins the coverage determinism
// invariant: coverage observes the instrumented site before the ring
// write, so an event lost to a sink fault still contributes its edge.
func TestCoverageUnperturbedBySinkFaults(t *testing.T) {
	r := NewRecorder(4)
	r.AttachCoverage(coverage.NewMap())
	r.AttachFaults(faults.NewInjector().Arm(faults.SiteSinkWrite, 1))
	r.HypercallExit(1, 1, "mmu_update", nil)
	if got := r.Emitted(); got != 0 {
		t.Errorf("Emitted = %d, want 0 (write faulted)", got)
	}
	if got := r.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	cov := r.Coverage()
	if got := cov.Len(); got != 1 {
		t.Fatalf("coverage edges = %d, want 1 (edge recorded despite the drop)", got)
	}
	if got := coverage.Canonical(cov.Edges()); got != "hypercall/mmu_update:ok x1\n" {
		t.Errorf("canonical = %q, want the mmu_update:ok edge", got)
	}
}
