package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL trace format: one JSON object per line, so traces stream,
// grep cleanly, and parse incrementally. Two record shapes share the
// "kind" discriminator: every event of a cell (kind = the event kind),
// followed by one "cell_end" record carrying the cell's wall time,
// counters and drop count — the anchor a reader uses to align a
// diverging Table III cell with its metrics.

// TraceRecord is the wire form of one JSONL line.
type TraceRecord struct {
	Cell   string `json:"cell"`
	Kind   string `json:"kind"`
	Seq    uint64 `json:"seq,omitempty"`
	Dom    uint16 `json:"dom,omitempty"`
	Nr     int32  `json:"nr,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Val    uint64 `json:"val,omitempty"`
	Label  string `json:"label,omitempty"`
	Detail string `json:"detail,omitempty"`

	// cell_end fields.
	WallNS        int64          `json:"wall_ns,omitempty"`
	Counters      []CounterValue `json:"counters,omitempty"`
	DroppedEvents uint64         `json:"dropped_events,omitempty"`

	// Line is the 1-based source line the record was parsed from, set by
	// ReadTrace so consumers can point at the offending line of a
	// malformed or incomplete trace. Never serialized.
	Line int `json:"-"`
}

// CellEndKind tags the per-cell summary record closing a cell's events.
const CellEndKind = "cell_end"

// WriteTrace writes the profiles as a JSONL trace: each cell's events
// in order, closed by the cell's cell_end record. Profiles are written
// in the order given (the runner hands them over in cell order, so the
// trace is deterministic up to wall times at any worker count).
func WriteTrace(w io.Writer, profiles []*CellProfile) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		for i := range p.Events {
			e := &p.Events[i]
			rec := TraceRecord{
				Cell:   p.Cell,
				Kind:   e.Kind.String(),
				Seq:    e.Seq,
				Dom:    e.Dom,
				Nr:     e.Nr,
				Addr:   e.Addr,
				Val:    e.Val,
				Label:  e.Label,
				Detail: e.Detail,
			}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("telemetry: writing trace for %s: %w", p.Cell, err)
			}
		}
		end := TraceRecord{
			Cell:          p.Cell,
			Kind:          CellEndKind,
			WallNS:        p.WallNS,
			Counters:      p.Counters,
			DroppedEvents: p.DroppedEvents,
		}
		if err := enc.Encode(end); err != nil {
			return fmt.Errorf("telemetry: writing cell_end for %s: %w", p.Cell, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace, returning every record in order. It
// is the read side the trace tooling and tests share.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		rec.Line = line
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace after line %d: %w", line, err)
	}
	return out, nil
}
