package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the cross-environment metrics aggregate: named atomic
// counters and histograms. Campaign workers merge their cells' profiles
// concurrently as cells complete; readers snapshot after the campaign.
type Registry struct {
	counters   sync.Map // string -> *Counter
	histograms sync.Map // string -> *Histogram

	// profiles retains every recorded cell profile in completion order,
	// so a campaign that dies or is cancelled mid-run can still flush a
	// trace of the cells that finished. Completion order is not cell
	// order; readers that need determinism must sort.
	profMu   sync.Mutex
	profiles []*CellProfile
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current reading.
func (c *Counter) Value() uint64 { return c.v.Load() }

// histogramBuckets is one bucket per power of two: bucket i counts
// observations v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
const histogramBuckets = 65

// Histogram is an atomic power-of-two-bucket histogram, sized for
// nanosecond durations (bucket index = bit length of the observation).
type Histogram struct {
	buckets [histogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for cur := h.min.Load(); v < cur; cur = h.min.Load() {
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for cur := h.max.Load(); v > cur; cur = h.max.Load() {
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a consistent-enough read of a histogram for
// post-campaign reporting.
type HistogramSnapshot struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min,omitempty"`
	Max   uint64 `json:"max,omitempty"`
	// Buckets maps the upper bound (2^i) of each nonempty bucket to its
	// observation count, in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one nonempty power-of-two bucket.
type HistogramBucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// Mean returns the average observation, 0 with no observations.
func (s HistogramSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-th quantile (0 < q < 1) from the
// power-of-two buckets: it finds the bucket holding the rank-q
// observation and interpolates linearly inside the bucket's
// [bound/2, bound) range, clamped to the observed [Min, Max]. With no
// observations it returns 0; q <= 0 returns Min and q >= 1 returns Max.
// The estimate is exact to within one power-of-two bucket, which is
// what a wall-time p50/p99 needs for regression tracking.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		lo, hi := bucketRange(b.UpperBound)
		// Interpolate the in-bucket position of the rank-q observation.
		frac := (float64(rank-cum) - 0.5) / float64(b.Count)
		v := lo + uint64(frac*float64(hi-lo))
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// bucketRange returns the half-open observation range [lo, hi) of the
// bucket with the given upper bound.
func bucketRange(bound uint64) (lo, hi uint64) {
	switch {
	case bound == 0:
		return 0, 1
	case bound == ^uint64(0): // the saturated 2^64 bucket
		return 1 << 63, ^uint64(0)
	default:
		return bound / 2, bound
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if c, ok := g.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := g.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Histogram returns the named histogram, creating it on first use.
func (g *Registry) Histogram(name string) *Histogram {
	if h, ok := g.histograms.Load(name); ok {
		return h.(*Histogram)
	}
	fresh := &Histogram{}
	fresh.min.Store(^uint64(0)) // so the first Observe establishes the minimum
	h, _ := g.histograms.LoadOrStore(name, fresh)
	return h.(*Histogram)
}

// CellWallHistogram is the registry histogram that Record feeds with
// per-cell wall times.
const CellWallHistogram = "cell.wall_ns"

// DetectionLatencyHistogram is the registry histogram fed with per-cell
// detection latencies in virtual-time events (RQ3): the event-count
// distance from the end of the attack phase to the first
// verdict_evidence event the monitor recorded.
const DetectionLatencyHistogram = "detection.latency_events"

// Record merges one cell profile into the aggregate: every cell counter
// is added to the registry counter of the same name, and the cell's
// wall time is observed into the CellWallHistogram. Safe to call from
// concurrent campaign workers.
func (g *Registry) Record(p *CellProfile) {
	if g == nil || p == nil {
		return
	}
	for _, cv := range p.Counters {
		g.Counter(cv.Name).Add(cv.Value)
	}
	g.Histogram(CellWallHistogram).Observe(uint64(p.WallNS))
	g.profMu.Lock()
	g.profiles = append(g.profiles, p)
	g.profMu.Unlock()
}

// CellProfiles returns the recorded profiles in completion order. It is
// the salvage path for interrupted campaigns: the runner's cell-ordered
// result set never materialized, but every completed cell's profile is
// still here.
func (g *Registry) CellProfiles() []*CellProfile {
	if g == nil {
		return nil
	}
	g.profMu.Lock()
	defer g.profMu.Unlock()
	out := make([]*CellProfile, len(g.profiles))
	copy(out, g.profiles)
	return out
}

// Snapshot returns all counter readings sorted by name. Aggregated
// counter values are order-independent sums, so a snapshot taken after
// a campaign is deterministic at any worker count.
func (g *Registry) Snapshot() []CounterValue {
	if g == nil {
		return nil
	}
	var out []CounterValue
	g.counters.Range(func(k, v any) bool {
		out = append(out, CounterValue{Name: k.(string), Value: v.(*Counter).Value()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histograms returns snapshots of all histograms sorted by name, with
// only nonempty buckets materialized.
func (g *Registry) Histograms() []HistogramSnapshot {
	if g == nil {
		return nil
	}
	var out []HistogramSnapshot
	g.histograms.Range(func(k, v any) bool {
		h := v.(*Histogram)
		s := HistogramSnapshot{
			Name:  k.(string),
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
			Max:   h.max.Load(),
		}
		if s.Count > 0 {
			s.Min = h.min.Load()
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				var bound uint64
				switch {
				case i == 0:
					bound = 0
				case i >= 64:
					bound = ^uint64(0) // 2^64 saturates the uint64 bound
				default:
					bound = uint64(1) << i
				}
				s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: bound, Count: n})
			}
		}
		out = append(out, s)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
