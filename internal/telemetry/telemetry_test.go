package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestNilRecorderIsSafe pins the disabled-sink contract: every method
// of a nil *Recorder is a no-op, so instrumented hot paths need no
// guards at the call sites.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Inc("x")
	r.Add("x", 3)
	r.HypercallEnter(1, 2, "mmu_update")
	r.HypercallExit(1, 2, "mmu_update", errors.New("boom"))
	r.PageTypeGet(5, "l1")
	r.PageTypePut(5, "l1")
	r.ValidationReject(1, 2, "nope")
	r.WalkDenied(0xdead, "policy")
	r.WalkFault()
	r.InjectorOp(3, "ARBITRARY_WRITE_LINEAR", 0xbeef, 8)
	r.InjectorTransition(3, "initial", "erroneous", "KEEP_PAGE_ACCESS")
	r.ScenarioStep("XSA-148-priv", "step")
	r.Evidence("XSA-148-priv", "evidence")
	r.GrantOp(2, "map", 7)
	r.DomctlOp(0, "pause", 2)
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Emitted() != 0 || r.Dropped() != 0 || r.Counter("x") != 0 {
		t.Error("nil recorder reports nonzero state")
	}
	if r.Events() != nil || r.Counters() != nil || r.Profile("c", 1) != nil {
		t.Error("nil recorder returned non-nil collections")
	}
}

// TestRingWraparound checks the bounded ring overwrites oldest-first
// and accounts for the overwritten events.
func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.ScenarioStep("uc", fmt.Sprintf("line %d", i))
	}
	if got := r.Emitted(); got != 10 {
		t.Errorf("Emitted = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first order)", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("line %d", 6+i); e.Detail != want {
			t.Errorf("event %d: Detail = %q, want %q", i, e.Detail, want)
		}
	}
	if got := r.Counter("scenario.steps"); got != 10 {
		t.Errorf("scenario.steps = %d, want 10 (counters outlive the ring)", got)
	}
}

// TestRecorderCountersSortedAndTyped checks counter keys, sorting, and
// the error-only Detail of hypercall exits.
func TestRecorderCountersSortedAndTyped(t *testing.T) {
	r := NewRecorder(0)
	r.HypercallEnter(1, 1, "mmu_update")
	r.HypercallExit(1, 1, "mmu_update", nil)
	r.HypercallEnter(1, 20, "grant_table_op")
	r.HypercallExit(1, 20, "grant_table_op", errors.New("refused"))
	r.GrantOp(1, "map", 3)

	counters := r.Counters()
	for i := 1; i < len(counters); i++ {
		if counters[i-1].Name >= counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", counters[i-1].Name, counters[i].Name)
		}
	}
	if got := r.Counter("hypercall.mmu_update"); got != 1 {
		t.Errorf("hypercall.mmu_update = %d, want 1", got)
	}
	if got := r.Counter("hypercall.errors"); got != 1 {
		t.Errorf("hypercall.errors = %d, want 1", got)
	}
	events := r.Events()
	var sawCleanExit, sawFailedExit bool
	for _, e := range events {
		if e.Kind != KindHypercallExit {
			continue
		}
		if e.Detail == "" {
			sawCleanExit = true
		} else if e.Detail == "refused" {
			sawFailedExit = true
		}
	}
	if !sawCleanExit || !sawFailedExit {
		t.Errorf("exit events: clean=%v failed=%v, want both", sawCleanExit, sawFailedExit)
	}
}

// TestJSONLRoundTrip writes profiles and reads them back.
func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	r.HypercallEnter(1, 1, "mmu_update")
	r.HypercallExit(1, 1, "mmu_update", nil)
	r.PageTypeGet(42, "l1")
	p := r.Profile("4.6/XSA-148-priv/injection", 123456)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*CellProfile{p, nil}); err != nil {
		t.Fatal(err)
	}
	records, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 3 events + 1 cell_end; the nil profile contributes nothing.
	if len(records) != 4 {
		t.Fatalf("round-tripped %d records, want 4", len(records))
	}
	for i, rec := range records[:3] {
		if rec.Cell != p.Cell {
			t.Errorf("record %d: cell %q, want %q", i, rec.Cell, p.Cell)
		}
		if rec.Kind == CellEndKind {
			t.Errorf("record %d: premature cell_end", i)
		}
	}
	end := records[3]
	if end.Kind != CellEndKind || end.WallNS != 123456 || len(end.Counters) == 0 {
		t.Errorf("cell_end = %+v, want kind=%s wall_ns=123456 with counters", end, CellEndKind)
	}

	// A corrupt line fails with its line number.
	buf.Reset()
	buf.WriteString("{\"cell\":\"a\",\"kind\":\"x\"}\nnot json\n")
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("ReadTrace accepted a corrupt line")
	}
}

// TestRegistryConcurrentRecord merges profiles from many goroutines and
// checks the aggregate (run under -race in CI).
func TestRegistryConcurrentRecord(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Record(&CellProfile{
					Cell:     "c",
					WallNS:   int64(w*perWorker + i + 1),
					Counters: []CounterValue{{Name: "hypercall.mmu_update", Value: 2}},
				})
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("hypercall.mmu_update").Value(); got != workers*perWorker*2 {
		t.Errorf("aggregated counter = %d, want %d", got, workers*perWorker*2)
	}
	hists := reg.Histograms()
	if len(hists) != 1 || hists[0].Name != CellWallHistogram {
		t.Fatalf("histograms = %+v, want exactly %s", hists, CellWallHistogram)
	}
	h := hists[0]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.Min != 1 || h.Max != workers*perWorker {
		t.Errorf("min/max = %d/%d, want 1/%d", h.Min, h.Max, workers*perWorker)
	}
	n := uint64(workers * perWorker)
	if wantSum := n * (n + 1) / 2; h.Sum != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum, wantSum)
	}
}

// TestHistogramBuckets pins the power-of-two bucketing.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	snaps := reg.Histograms()
	if len(snaps) != 1 {
		t.Fatal("missing histogram snapshot")
	}
	s := snaps[0]
	if s.Count != 6 || s.Min != 0 || s.Max != 1000 {
		t.Errorf("count/min/max = %d/%d/%d, want 6/0/1000", s.Count, s.Min, s.Max)
	}
	// 0 -> bucket le 0; 1 -> le 2; 2,3 -> le 4; 4 -> le 8; 1000 -> le 1024.
	want := map[uint64]uint64{0: 1, 2: 1, 4: 2, 8: 1, 1024: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.UpperBound] != b.Count {
			t.Errorf("bucket le %d: count %d, want %d", b.UpperBound, b.Count, want[b.UpperBound])
		}
	}
}

// TestKindStrings pins the wire names tooling greps for.
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindHypercallEnter:   "hypercall_enter",
		KindHypercallExit:    "hypercall_exit",
		KindPageTypeGet:      "page_type_get",
		KindPageTypePut:      "page_type_put",
		KindValidationReject: "validation_reject",
		KindWalkDenied:       "walk_denied",
		KindInjectorOp:       "injector_op",
		KindInjectorState:    "injector_state",
		KindScenarioStep:     "scenario_step",
		KindVerdictEvidence:  "verdict_evidence",
		KindGrantOp:          "grant_op",
		KindDomctlOp:         "domctl_op",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
