package mm

import "fmt"

// P2M is one domain's pseudo-physical to machine translation table. In a
// paravirtualized system the guest sees a (possibly sparse) space of PFNs
// which the hypervisor maps to machine frames; the inverse direction is
// kept in the machine-wide M2P table so that the hypervisor can audit any
// frame's provenance.
//
// The table is sparse (a map) because hypercalls such as
// XENMEM_populate_physmap and XENMEM_decrease_reservation let a guest
// punch holes in — and extend — its pseudo-physical space at arbitrary
// PFNs.
type P2M struct {
	dom     DomID
	mem     *Memory
	entries map[PFN]MFN
	maxPFN  PFN
	// shared marks the entries map as belonging to a sealed snapshot;
	// the first mutation clones it (see own).
	shared bool
}

// NewP2M creates an empty translation table for the domain.
func (m *Memory) NewP2M(dom DomID) *P2M {
	return &P2M{dom: dom, mem: m, entries: make(map[PFN]MFN)}
}

// ForkOnto creates a copy-on-write view of the table bound to a forked
// machine. The entries map is shared with the sealed original until the
// fork's first Set or Clear clones it.
func (p *P2M) ForkOnto(mem *Memory) *P2M {
	return &P2M{dom: p.dom, mem: mem, entries: p.entries, maxPFN: p.maxPFN, shared: true}
}

// own clones the shared entries map before the first mutation.
func (p *P2M) own() {
	if !p.shared {
		return
	}
	clone := make(map[PFN]MFN, len(p.entries))
	for k, v := range p.entries {
		clone[k] = v
	}
	p.entries = clone
	p.shared = false
}

// Domain returns the domain this table belongs to.
func (p *P2M) Domain() DomID { return p.dom }

// Len returns the number of populated translations.
func (p *P2M) Len() int { return len(p.entries) }

// MaxPFN returns the highest PFN ever populated, defining the extent of
// the guest's pseudo-physical space.
func (p *P2M) MaxPFN() PFN { return p.maxPFN }

// Set installs pfn -> mfn and the inverse M2P entry. The frame must be
// owned by this domain: the hypervisor never lets a P2M point at foreign
// memory through legitimate interfaces.
func (p *P2M) Set(pfn PFN, mfn MFN) error {
	pi, err := p.mem.Info(mfn)
	if err != nil {
		return err
	}
	if pi.Owner != p.dom {
		return fmt.Errorf("%w: p2m of dom%d cannot map mfn %#x owned by dom%d",
			ErrNotOwner, p.dom, uint64(mfn), pi.Owner)
	}
	p.own()
	if old, ok := p.entries[pfn]; ok {
		*p.mem.m2pRef(old) = m2pEntry{}
	}
	p.entries[pfn] = mfn
	*p.mem.m2pRef(mfn) = m2pEntry{dom: p.dom, pfn: pfn, valid: true}
	if pfn > p.maxPFN {
		p.maxPFN = pfn
	}
	return nil
}

// Clear removes the translation for pfn, returning the machine frame that
// was mapped there. The frame itself is not freed; decrease_reservation
// and memory_exchange decide its fate.
func (p *P2M) Clear(pfn PFN) (MFN, error) {
	mfn, ok := p.entries[pfn]
	if !ok {
		return 0, fmt.Errorf("%w: dom%d pfn %#x", ErrNoMapping, p.dom, uint64(pfn))
	}
	p.own()
	delete(p.entries, pfn)
	*p.mem.m2pRef(mfn) = m2pEntry{}
	return mfn, nil
}

// Lookup translates a guest PFN to its machine frame.
func (p *P2M) Lookup(pfn PFN) (MFN, error) {
	mfn, ok := p.entries[pfn]
	if !ok {
		return 0, fmt.Errorf("%w: dom%d pfn %#x", ErrNoMapping, p.dom, uint64(pfn))
	}
	return mfn, nil
}

// Contains reports whether the PFN is populated.
func (p *P2M) Contains(pfn PFN) bool {
	_, ok := p.entries[pfn]
	return ok
}

// PFNs returns all populated PFNs in unspecified order.
func (p *P2M) PFNs() []PFN {
	out := make([]PFN, 0, len(p.entries))
	for pfn := range p.entries {
		out = append(out, pfn)
	}
	return out
}

// M2P performs the machine-to-pseudo-physical lookup for a frame,
// returning the owning domain and the PFN at which that domain sees it.
func (m *Memory) M2P(mfn MFN) (DomID, PFN, error) {
	if !m.ValidMFN(mfn) {
		return 0, 0, fmt.Errorf("%w: mfn %#x", ErrBadMFN, uint64(mfn))
	}
	e := m.m2pAt(mfn)
	if !e.valid {
		return 0, 0, fmt.Errorf("%w: mfn %#x has no m2p entry", ErrNoMapping, uint64(mfn))
	}
	return e.dom, e.pfn, nil
}
