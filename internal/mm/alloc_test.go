package mm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// The indexed free-set must give strict lowest-first ordering even after
// out-of-order frees: freeing 3 then 5 and allocating twice yields 3
// then 5, regardless of free order.
func TestAllocLowestFirstAfterOutOfOrderFrees(t *testing.T) {
	m := newTestMemory(t, 16)
	for i := 0; i < 8; i++ {
		if _, err := m.Alloc(Dom0); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	for _, seq := range [][]MFN{{3, 5}, {5, 3}} {
		for _, f := range seq {
			if err := m.Free(f); err != nil {
				t.Fatalf("Free(%d): %v", f, err)
			}
		}
		for _, want := range []MFN{3, 5} {
			got, err := m.Alloc(Dom0)
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			if got != want {
				t.Errorf("free order %v: Alloc = %d, want %d (lowest free)", seq, got, want)
			}
		}
	}
}

// Free-set bookkeeping must stay consistent across word and summary
// boundaries (64 and 4096 frames).
func TestFreeSetWordBoundaries(t *testing.T) {
	const frames = 64*64 + 130 // crosses a summary word plus a partial tail word
	m, err := NewMemory(frames)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeFrames() != frames {
		t.Fatalf("FreeFrames = %d, want %d", m.FreeFrames(), frames)
	}
	for _, mfn := range []MFN{63, 64, 4095, 4096, frames - 1} {
		if err := m.AllocAt(mfn, Dom0); err != nil {
			t.Fatalf("AllocAt(%d): %v", mfn, err)
		}
		if m.isFree(mfn) {
			t.Errorf("frame %d still marked free after AllocAt", mfn)
		}
	}
	if m.FreeFrames() != frames-5 {
		t.Errorf("FreeFrames = %d, want %d", m.FreeFrames(), frames-5)
	}
	// Lowest-first allocation must skip the holes we punched.
	for want := MFN(0); want < 63; want++ {
		got, err := m.Alloc(Dom0)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if got != want {
			t.Fatalf("Alloc = %d, want %d", got, want)
		}
	}
	got, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 65 {
		t.Errorf("Alloc across punched word boundary = %d, want 65", got)
	}
}

// AllocRange must find the lowest run even when it spans fully free
// words, and must skip fully allocated words without missing runs that
// straddle them.
func TestAllocRangeAcrossWords(t *testing.T) {
	m := newTestMemory(t, 256)
	// Allocate frames 0..99, free back 60..79: a 20-frame hole that
	// straddles the 63/64 word boundary.
	if _, err := m.AllocRange(100, Dom0); err != nil {
		t.Fatal(err)
	}
	for f := MFN(60); f < 80; f++ {
		if err := m.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	start, err := m.AllocRange(20, DomFirstGuest)
	if err != nil {
		t.Fatalf("AllocRange(20): %v", err)
	}
	if start != 60 {
		t.Errorf("AllocRange start = %d, want 60 (the straddling hole)", start)
	}
	// A larger request must land after the allocated prefix.
	start, err = m.AllocRange(30, DomFirstGuest)
	if err != nil {
		t.Fatalf("AllocRange(30): %v", err)
	}
	if start != 100 {
		t.Errorf("AllocRange start = %d, want 100", start)
	}
}

// Property: the free-set behaves exactly like a naive reference model
// (a boolean-per-frame scan) over arbitrary interleavings of Alloc,
// AllocAt, AllocRange and Free.
func TestQuickFreeSetMatchesReferenceModel(t *testing.T) {
	const frames = 300 // several words plus a partial tail
	f := func(script []uint16, seed int64) bool {
		m, err := NewMemory(frames)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		ref := make([]bool, frames) // true = free
		for i := range ref {
			ref[i] = true
		}
		refLowest := func() (MFN, bool) {
			for i, free := range ref {
				if free {
					return MFN(i), true
				}
			}
			return 0, false
		}
		refRun := func(n int) (MFN, bool) {
			run := 0
			for i := 0; i < frames; i++ {
				if ref[i] {
					run++
					if run == n {
						return MFN(i + 1 - n), true
					}
				} else {
					run = 0
				}
			}
			return 0, false
		}
		for _, op := range script {
			switch op % 4 {
			case 0: // Alloc
				want, wantOK := refLowest()
				got, err := m.Alloc(Dom0)
				if wantOK != (err == nil) {
					return false
				}
				if err == nil {
					if got != want {
						return false
					}
					ref[got] = false
				}
			case 1: // AllocAt
				target := MFN(rng.Intn(frames))
				err := m.AllocAt(target, Dom0)
				if ref[target] != (err == nil) {
					return false
				}
				if err == nil {
					ref[target] = false
				}
			case 2: // AllocRange
				n := rng.Intn(70) + 1
				want, wantOK := refRun(n)
				got, err := m.AllocRange(n, Dom0)
				if wantOK != (err == nil) {
					return false
				}
				if err == nil {
					if got != want {
						return false
					}
					for i := 0; i < n; i++ {
						ref[int(got)+i] = false
					}
				}
			case 3: // Free a random allocated frame
				target := rng.Intn(frames)
				if ref[target] {
					continue
				}
				if err := m.Free(MFN(target)); err != nil {
					return false
				}
				ref[target] = true
			}
		}
		// Final bookkeeping check.
		freeCount := 0
		for i, free := range ref {
			if free != m.isFree(MFN(i)) {
				return false
			}
			if free {
				freeCount++
			}
		}
		return m.FreeFrames() == freeCount &&
			m.AllocatedFrames() == frames-freeCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Exhausting the machine and refilling it must restore a full free-set.
func TestFreeSetExhaustAndRefill(t *testing.T) {
	const frames = 130
	m, err := NewMemory(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, err := m.Alloc(Dom0); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	if _, err := m.Alloc(Dom0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Alloc on full machine: err = %v, want ErrOutOfMemory", err)
	}
	if m.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d, want 0", m.FreeFrames())
	}
	for i := frames - 1; i >= 0; i-- {
		if err := m.Free(MFN(i)); err != nil {
			t.Fatalf("Free(%d): %v", i, err)
		}
	}
	if m.FreeFrames() != frames || m.AllocatedFrames() != 0 {
		t.Errorf("after refill: free=%d allocated=%d, want %d/0",
			m.FreeFrames(), m.AllocatedFrames(), frames)
	}
	if mfn, err := m.Alloc(Dom0); err != nil || mfn != 0 {
		t.Errorf("Alloc after refill = %d, %v; want 0, nil", mfn, err)
	}
}
