package mm

import (
	"sync"

	"repro/internal/faults"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Snapshot/COW machinery: a booted Memory can be sealed into an
// immutable Snapshot, and cheap copy-on-write forks stamped out from
// it. The campaign engine boots each (version, mode) environment once,
// seals the machine, and forks it per cell instead of re-booting —
// the record-and-restore reset that replay-driven fuzzing frameworks
// (IRIS, NecoFuzz) treat as the enabler for high iteration counts.
//
// Three structures clone lazily, at different granularities:
//
//   - Frame contents: per frame. A fork reads frames straight out of
//     the snapshot (or the shared zero frame) and materializes a
//     private copy only on first write.
//   - The frame table (pageInfo) and the M2P: per 64-entry chunk,
//     tracked in one ownership bit each. Info returns a mutable
//     pointer, so a fork takes ownership of a chunk on first access.
//   - P2M entries and guest page-table maps clone on first write in
//     their own packages (see P2M.ForkOnto, hv.Domain).
//
// The free-set bitmaps (a few hundred bytes) are copied eagerly: the
// allocator mutates them on almost every operation, so COW would only
// add branches.
//
// Forks from the same Snapshot may run on concurrent goroutines: the
// sealed state is never written again (every write path materializes
// private storage first), so shared reads are race-free.

// Chunk geometry for the lazily cloned frame-table and M2P arrays.
const (
	chunkShift = 6
	chunkSize  = 1 << chunkShift
)

// zeroFrame backs reads of never-written frames in forks and fresh
// machines alike. It must never be written; every write path
// materializes private storage first.
var zeroFrame = make([]byte, PageSize)

// journalKind tags one recorded boot-time observability operation.
type journalKind uint8

const (
	// jAllocConsult is one fault-plane consult at SiteAlloc.
	jAllocConsult journalKind = iota + 1
	// jCounter is one telemetry counter increment (name = counter).
	jCounter
	// jTypeGet is one page-type validation reference (mfn, type name).
	jTypeGet
	// jTypePut is one page-type reference drop.
	jTypePut
	// jSpanStart opens one mm-op span (name = operation).
	jSpanStart
	// jSpanEnd closes the innermost replayed mm-op span.
	jSpanEnd
)

// journalOp is one replayable boot-time operation.
type journalOp struct {
	kind journalKind
	mfn  uint64
	name string
}

// bootJournal records the machine's boot-time telemetry, fault-plane
// and span activity so a fork can replay it into per-cell sinks. All
// boot-time sink traffic originates in this package (the hypervisor
// and guest layers log to their consoles only), so the journal is a
// complete transcript of what a fresh boot would have emitted.
type bootJournal struct {
	ops           []journalOp
	allocConsults uint64
}

// StartBootJournal begins recording the machine's observability
// activity for later replay. Call it on a fresh machine before booting
// the environment that will be sealed.
func (m *Memory) StartBootJournal() { m.jrn = &bootJournal{} }

func (j *bootJournal) record(kind journalKind, mfn uint64, name string) {
	j.ops = append(j.ops, journalOp{kind: kind, mfn: mfn, name: name})
}

// Snapshot is a sealed, immutable image of a booted machine plus the
// boot journal and a pool of reusable fork instances.
type Snapshot struct {
	frames      [][]byte
	pageInfo    []PageInfo
	m2p         []m2pEntry
	freeWords   []uint64
	freeSummary []uint64
	freeCount   int
	allocated   int

	journal       []journalOp
	allocConsults uint64

	mu   sync.Mutex
	pool []*Memory
}

// Seal captures the machine as an immutable snapshot. The Memory must
// not be used afterward: its backing arrays become the snapshot's
// shared state, read concurrently by every fork.
func (m *Memory) Seal() *Snapshot {
	s := &Snapshot{
		frames:      m.frames,
		pageInfo:    m.pageInfo,
		m2p:         m.m2p,
		freeWords:   m.freeWords,
		freeSummary: m.freeSummary,
		freeCount:   m.freeCount,
		allocated:   m.allocated,
	}
	if m.jrn != nil {
		s.journal = m.jrn.ops
		s.allocConsults = m.jrn.allocConsults
		m.jrn = nil
	}
	return s
}

// BootAllocConsults returns how many times the boot consulted the
// fault plane's allocation site. A cell whose injector would fire
// within that many consults must boot fresh (the fault belongs inside
// its boot), which Injector.WouldFire decides.
func (s *Snapshot) BootAllocConsults() uint64 { return s.allocConsults }

// NumFrames returns the sealed machine's size in frames.
func (s *Snapshot) NumFrames() int { return len(s.frames) }

// PoolSize reports how many recycled forks await reuse. Tests use it to
// verify that only cleanly completed cells return their forks.
func (s *Snapshot) PoolSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pool)
}

// Fork stamps out a copy-on-write instance of the sealed machine,
// reusing a pooled instance when one is available. The fork has no
// telemetry, fault or span sinks attached; callers attach per-cell
// sinks and then Replay the boot journal into them. Safe for
// concurrent use.
func (s *Snapshot) Fork() *Memory {
	s.mu.Lock()
	var m *Memory
	if n := len(s.pool); n > 0 {
		m = s.pool[n-1]
		s.pool = s.pool[:n-1]
	}
	s.mu.Unlock()
	if m == nil {
		chunks := (len(s.frames) + chunkSize - 1) / chunkSize
		words := (chunks + 63) / 64
		m = &Memory{
			frames:      make([][]byte, len(s.frames)),
			pageInfo:    make([]PageInfo, len(s.pageInfo)),
			m2p:         make([]m2pEntry, len(s.m2p)),
			freeWords:   make([]uint64, len(s.freeWords)),
			freeSummary: make([]uint64, len(s.freeSummary)),
			ownInfo:     make([]uint64, words),
			ownM2P:      make([]uint64, words),
			snap:        s,
		}
	}
	copy(m.freeWords, s.freeWords)
	copy(m.freeSummary, s.freeSummary)
	m.freeCount = s.freeCount
	m.allocated = s.allocated
	return m
}

// Recycle resets a fork to the sealed state and returns it to the
// snapshot's pool for reuse. Only fully healthy forks should come
// back: a cell that crashed, hung, wedged or fired substrate faults
// abandons its fork to the garbage collector instead. Resetting is
// arena-style — ownership bits are cleared and materialized frames
// dropped, so the next Fork call re-clones lazily. Safe for
// concurrent use.
func (s *Snapshot) Recycle(m *Memory) {
	if m == nil || m.snap != s {
		return
	}
	for i := range m.ownInfo {
		m.ownInfo[i] = 0
	}
	for i := range m.ownM2P {
		m.ownM2P[i] = 0
	}
	for _, mfn := range m.dirtyFrames {
		m.frames[mfn] = nil
	}
	m.dirtyFrames = m.dirtyFrames[:0]
	m.tel, m.flt, m.spans = nil, nil, nil
	s.mu.Lock()
	s.pool = append(s.pool, m)
	s.mu.Unlock()
}

// Replay drives the boot journal through the given per-cell sinks,
// reproducing exactly the event sequence, counter increments, span
// structure and fault-plane consults a fresh boot would have produced
// — including sink-write fault drops, because replayed events pass
// through the recorder's own emit path. All three sinks are nil-safe;
// with none attached the replay is skipped entirely.
func (s *Snapshot) Replay(tel *telemetry.Recorder, flt *faults.Injector, tree *span.Tree) {
	if tel == nil && flt == nil && tree == nil {
		return
	}
	var stack []int
	for i := range s.journal {
		op := &s.journal[i]
		switch op.kind {
		case jAllocConsult:
			flt.Hit(faults.SiteAlloc)
		case jCounter:
			tel.Inc(op.name)
		case jTypeGet:
			tel.PageTypeGet(op.mfn, op.name)
		case jTypePut:
			tel.PageTypePut(op.mfn, op.name)
		case jSpanStart:
			stack = append(stack, tree.MMOp(op.name))
		case jSpanEnd:
			if n := len(stack); n > 0 {
				tree.End(stack[n-1])
				stack = stack[:n-1]
			}
		}
	}
}

// Copy-on-write plumbing. A Memory with snap != nil reads unowned
// state through the snapshot; every write path takes ownership of the
// enclosing chunk (or materializes the frame) first.

func chunkOwned(bits []uint64, chunk uint) bool {
	return bits[chunk>>6]>>(chunk&63)&1 == 1
}

// ownInfoChunk ensures the fork privately owns the frame-table chunk
// containing mfn, cloning it from the snapshot on first access.
func (m *Memory) ownInfoChunk(mfn MFN) {
	c := uint(mfn) >> chunkShift
	if chunkOwned(m.ownInfo, c) {
		return
	}
	m.ownInfo[c>>6] |= 1 << (c & 63)
	lo := int(c) << chunkShift
	hi := lo + chunkSize
	if hi > len(m.pageInfo) {
		hi = len(m.pageInfo)
	}
	copy(m.pageInfo[lo:hi], m.snap.pageInfo[lo:hi])
}

// ownM2PChunk is ownInfoChunk for the M2P table.
func (m *Memory) ownM2PChunk(mfn MFN) {
	c := uint(mfn) >> chunkShift
	if chunkOwned(m.ownM2P, c) {
		return
	}
	m.ownM2P[c>>6] |= 1 << (c & 63)
	lo := int(c) << chunkShift
	hi := lo + chunkSize
	if hi > len(m.m2p) {
		hi = len(m.m2p)
	}
	copy(m.m2p[lo:hi], m.snap.m2p[lo:hi])
}

// m2pAt reads one M2P entry, through the snapshot when the fork does
// not own the chunk. The caller must have validated mfn.
func (m *Memory) m2pAt(mfn MFN) m2pEntry {
	if m.snap != nil && !chunkOwned(m.ownM2P, uint(mfn)>>chunkShift) {
		return m.snap.m2p[mfn]
	}
	return m.m2p[mfn]
}

// m2pRef returns a writable pointer to one M2P entry, taking chunk
// ownership first. The caller must have validated mfn.
func (m *Memory) m2pRef(mfn MFN) *m2pEntry {
	if m.snap != nil {
		m.ownM2PChunk(mfn)
	}
	return &m.m2p[mfn]
}

// frameRead returns the frame's backing store for reading: the fork's
// private copy if one exists, the snapshot's sealed content otherwise,
// and the shared zero frame when neither has ever been written. The
// returned slice must not be written.
func (m *Memory) frameRead(mfn MFN) []byte {
	if f := m.frames[mfn]; f != nil {
		return f
	}
	if m.snap != nil {
		if f := m.snap.frames[mfn]; f != nil {
			return f
		}
	}
	return zeroFrame
}

// frameWrite returns private, writable backing store for the frame,
// materializing it (seeded from the snapshot's content, if any) on
// first write.
func (m *Memory) frameWrite(mfn MFN) []byte {
	if f := m.frames[mfn]; f != nil {
		return f
	}
	f := make([]byte, PageSize)
	if m.snap != nil {
		if sf := m.snap.frames[mfn]; sf != nil {
			copy(f, sf)
		}
		m.dirtyFrames = append(m.dirtyFrames, mfn)
	}
	m.frames[mfn] = f
	return f
}
