package mm

import (
	"bytes"
	"errors"
	"testing"
)

func newTestMemory(t *testing.T, frames int) *Memory {
	t.Helper()
	m, err := NewMemory(frames)
	if err != nil {
		t.Fatalf("NewMemory(%d): %v", frames, err)
	}
	return m
}

func TestNewMemoryRejectsNonPositiveSizes(t *testing.T) {
	for _, n := range []int{0, -1, -4096} {
		if _, err := NewMemory(n); err == nil {
			t.Errorf("NewMemory(%d) succeeded, want error", n)
		}
	}
}

func TestPhysAddrGeometry(t *testing.T) {
	tests := []struct {
		addr   PhysAddr
		frame  MFN
		offset uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{PageSize - 1, 0, PageSize - 1},
		{PageSize, 1, 0},
		{3*PageSize + 17, 3, 17},
	}
	for _, tt := range tests {
		if got := tt.addr.Frame(); got != tt.frame {
			t.Errorf("PhysAddr(%#x).Frame() = %#x, want %#x", uint64(tt.addr), uint64(got), uint64(tt.frame))
		}
		if got := tt.addr.Offset(); got != tt.offset {
			t.Errorf("PhysAddr(%#x).Offset() = %#x, want %#x", uint64(tt.addr), got, tt.offset)
		}
	}
	if got := MFN(5).Addr(); got != 5*PageSize {
		t.Errorf("MFN(5).Addr() = %#x, want %#x", uint64(got), uint64(5*PageSize))
	}
}

func TestFrameTypeClassification(t *testing.T) {
	tests := []struct {
		typ     FrameType
		isPT    bool
		level   int
		wantStr string
	}{
		{TypeNone, false, 0, "none"},
		{TypeWritable, false, 0, "writable"},
		{TypeL1, true, 1, "l1"},
		{TypeL2, true, 2, "l2"},
		{TypeL3, true, 3, "l3"},
		{TypeL4, true, 4, "l4"},
		{TypeSegDesc, false, 0, "segdesc"},
		{TypeGrant, false, 0, "grant"},
	}
	for _, tt := range tests {
		if got := tt.typ.IsPageTable(); got != tt.isPT {
			t.Errorf("%v.IsPageTable() = %v, want %v", tt.typ, got, tt.isPT)
		}
		if got := tt.typ.PageTableLevel(); got != tt.level {
			t.Errorf("%v.PageTableLevel() = %d, want %d", tt.typ, got, tt.level)
		}
		if got := tt.typ.String(); got != tt.wantStr {
			t.Errorf("%v.String() = %q, want %q", tt.typ, got, tt.wantStr)
		}
	}
}

func TestTypeForLevel(t *testing.T) {
	for level := 1; level <= 4; level++ {
		typ, err := TypeForLevel(level)
		if err != nil {
			t.Fatalf("TypeForLevel(%d): %v", level, err)
		}
		if typ.PageTableLevel() != level {
			t.Errorf("TypeForLevel(%d) = %v (level %d)", level, typ, typ.PageTableLevel())
		}
	}
	for _, level := range []int{0, 5, -1} {
		if _, err := TypeForLevel(level); err == nil {
			t.Errorf("TypeForLevel(%d) succeeded, want error", level)
		}
	}
}

func TestAllocIsLowestFirstAndZeroed(t *testing.T) {
	m := newTestMemory(t, 8)
	first, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if first != 0 {
		t.Errorf("first Alloc = %#x, want 0", uint64(first))
	}
	second, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if second != 1 {
		t.Errorf("second Alloc = %#x, want 1", uint64(second))
	}
	// Dirty, free and re-allocate: contents must come back zeroed.
	if err := m.WritePhys(first.Addr(), []byte("dirty")); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	if err := m.Free(first); err != nil {
		t.Fatalf("Free: %v", err)
	}
	again, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	if again != first {
		t.Errorf("re-alloc = %#x, want %#x (lowest free)", uint64(again), uint64(first))
	}
	buf := make([]byte, 5)
	if err := m.ReadPhys(again.Addr(), buf); err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 5)) {
		t.Errorf("re-allocated frame not zeroed: %q", buf)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := newTestMemory(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := m.Alloc(Dom0); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	if _, err := m.Alloc(Dom0); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("Alloc on full machine: err = %v, want ErrOutOfMemory", err)
	}
	if got := m.AllocatedFrames(); got != 2 {
		t.Errorf("AllocatedFrames = %d, want 2", got)
	}
}

func TestAllocAt(t *testing.T) {
	m := newTestMemory(t, 8)
	if err := m.AllocAt(5, DomFirstGuest); err != nil {
		t.Fatalf("AllocAt(5): %v", err)
	}
	pi, err := m.Info(5)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if pi.Owner != DomFirstGuest {
		t.Errorf("owner = %d, want %d", pi.Owner, DomFirstGuest)
	}
	if err := m.AllocAt(5, Dom0); err == nil {
		t.Error("AllocAt on allocated frame succeeded, want error")
	}
	if err := m.AllocAt(100, Dom0); !errors.Is(err, ErrBadMFN) {
		t.Errorf("AllocAt out of range: err = %v, want ErrBadMFN", err)
	}
}

func TestAllocRange(t *testing.T) {
	m := newTestMemory(t, 16)
	// Fragment the low memory.
	if err := m.AllocAt(2, Dom0); err != nil {
		t.Fatalf("AllocAt: %v", err)
	}
	start, err := m.AllocRange(4, DomFirstGuest)
	if err != nil {
		t.Fatalf("AllocRange: %v", err)
	}
	if start != 3 {
		t.Errorf("AllocRange start = %#x, want 3 (first gap after the fragment)", uint64(start))
	}
	for i := 0; i < 4; i++ {
		pi, err := m.Info(start + MFN(i))
		if err != nil {
			t.Fatalf("Info: %v", err)
		}
		if pi.Owner != DomFirstGuest {
			t.Errorf("frame %d owner = %d, want %d", i, pi.Owner, DomFirstGuest)
		}
	}
	if _, err := m.AllocRange(100, Dom0); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized AllocRange: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := m.AllocRange(0, Dom0); err == nil {
		t.Error("AllocRange(0) succeeded, want error")
	}
}

func TestFreeChecks(t *testing.T) {
	m := newTestMemory(t, 4)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := m.GetRef(mfn, Dom0); err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	if err := m.Free(mfn); !errors.Is(err, ErrFrameBusy) {
		t.Errorf("Free of referenced frame: err = %v, want ErrFrameBusy", err)
	}
	if err := m.PutRef(mfn); err != nil {
		t.Fatalf("PutRef: %v", err)
	}
	if err := m.Free(mfn); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := m.Free(mfn); err == nil {
		t.Error("double Free succeeded, want error")
	}
}

func TestRefCounting(t *testing.T) {
	m := newTestMemory(t, 4)
	mfn, err := m.Alloc(DomFirstGuest)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := m.GetRef(mfn, Dom0); !errors.Is(err, ErrNotOwner) {
		t.Errorf("GetRef by non-owner: err = %v, want ErrNotOwner", err)
	}
	if err := m.PutRef(mfn); err == nil {
		t.Error("PutRef with zero count succeeded, want underflow error")
	}
}

func TestTypeTransitions(t *testing.T) {
	m := newTestMemory(t, 4)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := m.GetType(mfn, TypeL2); err != nil {
		t.Fatalf("GetType l2: %v", err)
	}
	if err := m.GetType(mfn, TypeL2); err != nil {
		t.Fatalf("second GetType l2: %v", err)
	}
	if err := m.GetType(mfn, TypeWritable); !errors.Is(err, ErrTypeConflict) {
		t.Errorf("conflicting GetType: err = %v, want ErrTypeConflict", err)
	}
	if err := m.PutType(mfn); err != nil {
		t.Fatalf("PutType: %v", err)
	}
	if err := m.PutType(mfn); err != nil {
		t.Fatalf("PutType: %v", err)
	}
	pi, _ := m.Info(mfn)
	if pi.Type != TypeNone || pi.TypeCount != 0 {
		t.Errorf("after draining, type = %v count = %d, want none/0", pi.Type, pi.TypeCount)
	}
	// Now retyping must succeed.
	if err := m.GetType(mfn, TypeWritable); err != nil {
		t.Errorf("GetType writable after drain: %v", err)
	}
	if err := m.GetType(mfn, TypeNone); err == nil {
		t.Error("GetType(TypeNone) succeeded, want error")
	}
	if err := m.PutType(999); !errors.Is(err, ErrBadMFN) {
		t.Errorf("PutType out of range: err = %v, want ErrBadMFN", err)
	}
}

func TestPinnedTypeSurvivesDrain(t *testing.T) {
	m := newTestMemory(t, 4)
	mfn, _ := m.Alloc(Dom0)
	if err := m.GetType(mfn, TypeL4); err != nil {
		t.Fatalf("GetType: %v", err)
	}
	pi, _ := m.Info(mfn)
	pi.Pinned = true
	if err := m.PutType(mfn); err != nil {
		t.Fatalf("PutType: %v", err)
	}
	pi, _ = m.Info(mfn)
	if pi.Type != TypeL4 {
		t.Errorf("pinned frame lost its type: %v", pi.Type)
	}
}

func TestPhysReadWriteRoundTrip(t *testing.T) {
	m := newTestMemory(t, 4)
	msg := []byte("spanning two frames deliberately")
	addr := PhysAddr(PageSize - 7) // straddles frames 0 and 1
	if err := m.WritePhys(addr, msg); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	got := make([]byte, len(msg))
	if err := m.ReadPhys(addr, got); err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip = %q, want %q", got, msg)
	}
}

func TestPhysAccessBounds(t *testing.T) {
	m := newTestMemory(t, 2)
	buf := make([]byte, 16)
	if err := m.ReadPhys(PhysAddr(m.Bytes()-8), buf); !errors.Is(err, ErrBadPhysAddr) {
		t.Errorf("read past end: err = %v, want ErrBadPhysAddr", err)
	}
	if err := m.WritePhys(PhysAddr(m.Bytes()), buf[:1]); !errors.Is(err, ErrBadPhysAddr) {
		t.Errorf("write at end: err = %v, want ErrBadPhysAddr", err)
	}
	// Overflowing range.
	if err := m.ReadPhys(PhysAddr(^uint64(0)-4), buf); !errors.Is(err, ErrBadPhysAddr) {
		t.Errorf("overflowing read: err = %v, want ErrBadPhysAddr", err)
	}
	// Zero-length access is a no-op even at a bad address.
	if err := m.ReadPhys(PhysAddr(m.Bytes()+PageSize), nil); err != nil {
		t.Errorf("zero-length read: %v", err)
	}
}

func TestU64Accessors(t *testing.T) {
	m := newTestMemory(t, 2)
	const v = 0x0102030405060708
	if err := m.WriteU64(40, v); err != nil {
		t.Fatalf("WriteU64: %v", err)
	}
	got, err := m.ReadU64(40)
	if err != nil {
		t.Fatalf("ReadU64: %v", err)
	}
	if got != v {
		t.Errorf("ReadU64 = %#x, want %#x", got, v)
	}
	// Verify little-endian layout explicitly.
	b := make([]byte, 8)
	if err := m.ReadPhys(40, b); err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Errorf("byte order = % x, want little-endian", b)
	}
}

func TestP2MRoundTrip(t *testing.T) {
	m := newTestMemory(t, 8)
	p2m := m.NewP2M(DomFirstGuest)
	mfn, err := m.Alloc(DomFirstGuest)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := p2m.Set(7, mfn); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, err := p2m.Lookup(7)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != mfn {
		t.Errorf("Lookup = %#x, want %#x", uint64(got), uint64(mfn))
	}
	dom, pfn, err := m.M2P(mfn)
	if err != nil {
		t.Fatalf("M2P: %v", err)
	}
	if dom != DomFirstGuest || pfn != 7 {
		t.Errorf("M2P = dom%d pfn %#x, want dom%d pfn 7", dom, uint64(pfn), DomFirstGuest)
	}
	if p2m.MaxPFN() != 7 {
		t.Errorf("MaxPFN = %d, want 7", p2m.MaxPFN())
	}
}

func TestP2MRejectsForeignFrames(t *testing.T) {
	m := newTestMemory(t, 8)
	p2m := m.NewP2M(DomFirstGuest)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := p2m.Set(0, mfn); !errors.Is(err, ErrNotOwner) {
		t.Errorf("Set foreign frame: err = %v, want ErrNotOwner", err)
	}
}

func TestP2MClearInvalidatesM2P(t *testing.T) {
	m := newTestMemory(t, 8)
	p2m := m.NewP2M(DomFirstGuest)
	mfn, _ := m.Alloc(DomFirstGuest)
	if err := p2m.Set(3, mfn); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, err := p2m.Clear(3)
	if err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if got != mfn {
		t.Errorf("Clear returned %#x, want %#x", uint64(got), uint64(mfn))
	}
	if _, err := p2m.Lookup(3); !errors.Is(err, ErrNoMapping) {
		t.Errorf("Lookup after clear: err = %v, want ErrNoMapping", err)
	}
	if _, _, err := m.M2P(mfn); !errors.Is(err, ErrNoMapping) {
		t.Errorf("M2P after clear: err = %v, want ErrNoMapping", err)
	}
	if _, err := p2m.Clear(3); !errors.Is(err, ErrNoMapping) {
		t.Errorf("double Clear: err = %v, want ErrNoMapping", err)
	}
}

func TestP2MRemapReplacesM2P(t *testing.T) {
	m := newTestMemory(t, 8)
	p2m := m.NewP2M(DomFirstGuest)
	a, _ := m.Alloc(DomFirstGuest)
	b, _ := m.Alloc(DomFirstGuest)
	if err := p2m.Set(1, a); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := p2m.Set(1, b); err != nil {
		t.Fatalf("re-Set: %v", err)
	}
	if _, _, err := m.M2P(a); !errors.Is(err, ErrNoMapping) {
		t.Errorf("old frame still has m2p entry after remap: %v", err)
	}
	dom, pfn, err := m.M2P(b)
	if err != nil || dom != DomFirstGuest || pfn != 1 {
		t.Errorf("M2P(b) = dom%d pfn %d err %v, want dom%d pfn 1", dom, pfn, err, DomFirstGuest)
	}
}

func TestP2MPFNsAndContains(t *testing.T) {
	m := newTestMemory(t, 8)
	p2m := m.NewP2M(DomFirstGuest)
	for i := 0; i < 3; i++ {
		mfn, _ := m.Alloc(DomFirstGuest)
		if err := p2m.Set(PFN(i*10), mfn); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if p2m.Len() != 3 {
		t.Errorf("Len = %d, want 3", p2m.Len())
	}
	if !p2m.Contains(20) || p2m.Contains(5) {
		t.Error("Contains gave wrong answers")
	}
	seen := make(map[PFN]bool)
	for _, pfn := range p2m.PFNs() {
		seen[pfn] = true
	}
	for _, want := range []PFN{0, 10, 20} {
		if !seen[want] {
			t.Errorf("PFNs missing %d", want)
		}
	}
}
