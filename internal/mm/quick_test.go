package mm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any sequence of Set/Clear operations, P2M and M2P remain
// exact inverses of each other.
func TestQuickP2MM2PInverse(t *testing.T) {
	const frames = 64
	f := func(ops []uint16, seed int64) bool {
		m, err := NewMemory(frames)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		p2m := m.NewP2M(DomFirstGuest)
		owned := make([]MFN, 0, frames)
		for i := 0; i < frames/2; i++ {
			mfn, err := m.Alloc(DomFirstGuest)
			if err != nil {
				return false
			}
			owned = append(owned, mfn)
		}
		for _, op := range ops {
			pfn := PFN(op % 97)
			if rng.Intn(2) == 0 {
				mfn := owned[rng.Intn(len(owned))]
				// Skip frames already mapped at another PFN; the
				// invariant under test is per-mapping consistency.
				if dom, at, err := m.M2P(mfn); err == nil && dom == DomFirstGuest && at != pfn {
					continue
				}
				if err := p2m.Set(pfn, mfn); err != nil {
					return false
				}
			} else if p2m.Contains(pfn) {
				if _, err := p2m.Clear(pfn); err != nil {
					return false
				}
			}
		}
		// Forward check: every P2M entry has a matching M2P entry.
		for _, pfn := range p2m.PFNs() {
			mfn, err := p2m.Lookup(pfn)
			if err != nil {
				return false
			}
			dom, back, err := m.M2P(mfn)
			if err != nil || dom != DomFirstGuest || back != pfn {
				return false
			}
		}
		// Backward check: every valid M2P entry appears in the P2M.
		for mfn := MFN(0); m.ValidMFN(mfn); mfn++ {
			dom, pfn, err := m.M2P(mfn)
			if err != nil {
				continue
			}
			if dom != DomFirstGuest {
				return false
			}
			got, err := p2m.Lookup(pfn)
			if err != nil || got != mfn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: reference and type counts never underflow and always balance —
// after applying any random sequence of get/put pairs that the API
// accepts, draining the recorded outstanding counts brings every frame
// back to zero and makes it freeable.
func TestQuickRefcountBalance(t *testing.T) {
	const frames = 16
	f := func(script []byte) bool {
		m, err := NewMemory(frames)
		if err != nil {
			return false
		}
		var mfns []MFN
		for i := 0; i < frames; i++ {
			mfn, err := m.Alloc(Dom0)
			if err != nil {
				return false
			}
			mfns = append(mfns, mfn)
		}
		refs := make(map[MFN]int)
		types := make(map[MFN]int)
		for i, b := range script {
			mfn := mfns[int(b)%len(mfns)]
			switch i % 4 {
			case 0:
				if err := m.GetRef(mfn, Dom0); err != nil {
					return false
				}
				refs[mfn]++
			case 1:
				typ := TypeWritable
				if b%2 == 0 {
					typ = TypeL1
				}
				if err := m.GetType(mfn, typ); err == nil {
					types[mfn]++
				}
				// A type conflict is a legal refusal, not a violation.
			case 2:
				if refs[mfn] > 0 {
					if err := m.PutRef(mfn); err != nil {
						return false
					}
					refs[mfn]--
				}
			case 3:
				if types[mfn] > 0 {
					if err := m.PutType(mfn); err != nil {
						return false
					}
					types[mfn]--
				}
			}
		}
		// Drain and verify every frame becomes freeable.
		for _, mfn := range mfns {
			for refs[mfn] > 0 {
				if err := m.PutRef(mfn); err != nil {
					return false
				}
				refs[mfn]--
			}
			for types[mfn] > 0 {
				if err := m.PutType(mfn); err != nil {
					return false
				}
				types[mfn]--
			}
			pi, err := m.Info(mfn)
			if err != nil || pi.RefCount != 0 || pi.TypeCount != 0 {
				return false
			}
			if err := m.Free(mfn); err != nil {
				return false
			}
		}
		return m.AllocatedFrames() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: physical read-after-write returns exactly the written bytes
// for arbitrary (address, payload) pairs inside the machine.
func TestQuickPhysReadAfterWrite(t *testing.T) {
	const frames = 8
	m, err := NewMemory(frames)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addr uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		a := PhysAddr(uint64(addr) % (m.Bytes() - uint64(len(payload)%int(m.Bytes()))))
		if uint64(a)+uint64(len(payload)) > m.Bytes() {
			return true
		}
		if err := m.WritePhys(a, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := m.ReadPhys(a, got); err != nil {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AllocRange always returns frames that are consecutive, owned
// by the requester, and previously free.
func TestQuickAllocRange(t *testing.T) {
	f := func(pre []byte, n uint8) bool {
		m, err := NewMemory(64)
		if err != nil {
			return false
		}
		for _, b := range pre {
			_ = m.AllocAt(MFN(b%64), Dom0) // fragment arbitrarily; duplicates fail harmlessly
		}
		count := int(n%8) + 1
		start, err := m.AllocRange(count, DomFirstGuest)
		if err != nil {
			// Failure is acceptable only if no run of `count` consecutive
			// free frames exists.
			run := 0
			for mfn := MFN(0); m.ValidMFN(mfn); mfn++ {
				pi, err := m.Info(mfn)
				if err != nil {
					return false
				}
				if pi.Owner == DomInvalid {
					run++
					if run >= count {
						return false // a run existed; AllocRange should have found it
					}
				} else {
					run = 0
				}
			}
			return true
		}
		for i := 0; i < count; i++ {
			pi, err := m.Info(start + MFN(i))
			if err != nil || pi.Owner != DomFirstGuest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
