package mm

import (
	"fmt"
	"math/bits"

	"repro/internal/faults"
)

// allocFault consults the fault plane before an allocation. When the
// armed SiteAlloc rule fires, the allocator reports ErrOutOfMemory as
// if the machine were exhausted, wrapped in faults.ErrInjected so
// callers can tell a forced failure from a real one.
func (m *Memory) allocFault() error {
	if m.jrn != nil {
		m.jrn.allocConsults++
		m.jrn.record(jAllocConsult, 0, "")
	}
	if m.flt.Hit(faults.SiteAlloc) {
		return fmt.Errorf("%w: %w (forced allocation failure)", ErrOutOfMemory, faults.ErrInjected)
	}
	return nil
}

// setFree marks a frame free in the indexed free-set.
func (m *Memory) setFree(mfn MFN) {
	w, b := int(mfn)>>6, uint(mfn)&63
	m.freeWords[w] |= 1 << b
	m.freeSummary[w>>6] |= 1 << (uint(w) & 63)
	m.freeCount++
}

// clearFree removes a frame from the free-set. The caller must know the
// frame is currently free.
func (m *Memory) clearFree(mfn MFN) {
	w, b := int(mfn)>>6, uint(mfn)&63
	m.freeWords[w] &^= 1 << b
	if m.freeWords[w] == 0 {
		m.freeSummary[w>>6] &^= 1 << (uint(w) & 63)
	}
	m.freeCount--
}

// isFree reports whether a valid frame is in the free-set.
func (m *Memory) isFree(mfn MFN) bool {
	return m.freeWords[int(mfn)>>6]>>(uint(mfn)&63)&1 == 1
}

// lowestFree returns the lowest-numbered free frame. The summary level
// narrows the search to one word per 4096 frames, then two trailing-zero
// counts finish the job.
func (m *Memory) lowestFree() (MFN, bool) {
	for s, sum := range m.freeSummary {
		if sum == 0 {
			continue
		}
		w := s<<6 + bits.TrailingZeros64(sum)
		return MFN(w<<6 + bits.TrailingZeros64(m.freeWords[w])), true
	}
	return 0, false
}

// Alloc takes the lowest-numbered free frame, assigns it to the owner and
// zeroes its contents. Deterministic lowest-first allocation keeps
// experiment runs reproducible and lets exploits perform the allocator
// grooming that real attacks rely on.
func (m *Memory) Alloc(owner DomID) (MFN, error) {
	if err := m.allocFault(); err != nil {
		return 0, err
	}
	mfn, ok := m.lowestFree()
	if !ok {
		return 0, ErrOutOfMemory
	}
	m.clearFree(mfn)
	m.claim(mfn, owner)
	return mfn, nil
}

// AllocAt takes a specific free frame, for allocator grooming and for the
// domain builder, which lays frames out at fixed machine addresses.
func (m *Memory) AllocAt(mfn MFN, owner DomID) error {
	if !m.ValidMFN(mfn) {
		return fmt.Errorf("%w: mfn %#x", ErrBadMFN, uint64(mfn))
	}
	if !m.isFree(mfn) {
		return fmt.Errorf("mm: frame %#x is not free", uint64(mfn))
	}
	m.clearFree(mfn)
	m.claim(mfn, owner)
	return nil
}

// AllocRange allocates n consecutive free frames and returns the first.
// Used by the domain builder to give each domain a contiguous machine
// region, which keeps the physical-memory scans of the XSA-148 exploit
// realistic. The search walks the free-set word by word, skipping fully
// allocated 64-frame blocks, and claims the lowest run found.
func (m *Memory) AllocRange(n int, owner DomID) (MFN, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mm: AllocRange needs a positive count, got %d", n)
	}
	name := fmt.Sprintf("alloc_range[%d]", n)
	sp := m.spans.MMOp(name)
	if m.jrn != nil {
		m.jrn.record(jSpanStart, 0, name)
	}
	defer func() {
		if m.jrn != nil {
			m.jrn.record(jSpanEnd, 0, "")
		}
		m.spans.End(sp)
	}()
	if err := m.allocFault(); err != nil {
		return 0, err
	}
	run := 0
	for f := 0; f < len(m.frames); f++ {
		w, b := f>>6, uint(f)&63
		if b == 0 {
			// Word-granular fast paths: skip empty words, swallow
			// fully free ones.
			if word := m.freeWords[w]; word == 0 {
				run = 0
				f += 63
				continue
			} else if word == ^uint64(0) && f+64 <= len(m.frames) {
				run += 64
				f += 63
				if run >= n {
					return m.claimRange(MFN(f+1-run), n, owner)
				}
				continue
			}
		}
		if m.freeWords[w]>>b&1 == 1 {
			run++
			if run == n {
				return m.claimRange(MFN(f+1-n), n, owner)
			}
		} else {
			run = 0
		}
	}
	return 0, fmt.Errorf("%w: no run of %d consecutive free frames", ErrOutOfMemory, n)
}

// claimRange allocates the already-verified free frames [start, start+n).
func (m *Memory) claimRange(start MFN, n int, owner DomID) (MFN, error) {
	for i := 0; i < n; i++ {
		m.clearFree(start + MFN(i))
		m.claim(start+MFN(i), owner)
	}
	return start, nil
}

func (m *Memory) claim(mfn MFN, owner DomID) {
	if m.snap != nil {
		m.ownInfoChunk(mfn)
	}
	m.pageInfo[mfn] = PageInfo{Owner: owner, Type: TypeNone}
	if m.frames[mfn] != nil {
		clear(m.frames[mfn])
	} else if m.snap != nil && m.snap.frames[mfn] != nil {
		// The sealed image has content here; a freshly claimed frame
		// must read as zeros, so materialize a private zero page that
		// shadows it.
		m.frames[mfn] = make([]byte, PageSize)
		m.dirtyFrames = append(m.dirtyFrames, mfn)
	}
	*m.m2pRef(mfn) = m2pEntry{}
	m.allocated++
	m.tel.Inc("frames.alloc")
	if m.jrn != nil {
		m.jrn.record(jCounter, 0, "frames.alloc")
	}
}

// Free returns a frame to the allocator. The frame must have no
// outstanding references or type uses; the hypervisor's put paths must
// drive the counts to zero first. This check is the backstop that the
// "Keep Page Access" class of erroneous states (XSA-387/393 style)
// subverts by leaking a reference before the free.
func (m *Memory) Free(mfn MFN) error {
	pi, err := m.Info(mfn)
	if err != nil {
		return err
	}
	if pi.Owner == DomInvalid {
		return fmt.Errorf("mm: double free of frame %#x", uint64(mfn))
	}
	if pi.RefCount != 0 || pi.TypeCount != 0 {
		return fmt.Errorf("%w: mfn %#x ref=%d typecount=%d", ErrFrameBusy, uint64(mfn), pi.RefCount, pi.TypeCount)
	}
	*pi = PageInfo{Owner: DomInvalid, Type: TypeNone}
	*m.m2pRef(mfn) = m2pEntry{}
	m.setFree(mfn)
	m.allocated--
	m.tel.Inc("frames.free")
	if m.jrn != nil {
		m.jrn.record(jCounter, 0, "frames.free")
	}
	return nil
}

// GetRef takes a general reference on the frame on behalf of the domain.
// Foreign frames may not be referenced, which is exactly the isolation
// property intrusions break.
func (m *Memory) GetRef(mfn MFN, dom DomID) error {
	pi, err := m.Info(mfn)
	if err != nil {
		return err
	}
	if pi.Owner != dom {
		return fmt.Errorf("%w: mfn %#x owned by dom%d, caller dom%d", ErrNotOwner, uint64(mfn), pi.Owner, dom)
	}
	pi.RefCount++
	return nil
}

// PutRef drops a general reference.
func (m *Memory) PutRef(mfn MFN) error {
	pi, err := m.Info(mfn)
	if err != nil {
		return err
	}
	if pi.RefCount == 0 {
		return fmt.Errorf("mm: reference underflow on frame %#x", uint64(mfn))
	}
	pi.RefCount--
	return nil
}

// GetType validates the frame for use as the given type and takes a type
// reference. A frame whose TypeCount is zero may change type; otherwise
// the requested type must match the current one. This is the skeleton of
// Xen's get_page_type; the per-level entry validation that must run when
// a frame is first promoted to a page-table type lives in the hypervisor,
// which calls this after its checks pass.
func (m *Memory) GetType(mfn MFN, t FrameType) error {
	pi, err := m.Info(mfn)
	if err != nil {
		return err
	}
	if t == TypeNone {
		return fmt.Errorf("mm: cannot take a reference of type none on frame %#x", uint64(mfn))
	}
	if pi.TypeCount == 0 {
		pi.Type = t
		pi.TypeCount = 1
	} else if pi.Type != t {
		return fmt.Errorf("%w: mfn %#x is %s (count %d), wanted %s",
			ErrTypeConflict, uint64(mfn), pi.Type, pi.TypeCount, t)
	} else {
		pi.TypeCount++
	}
	m.tel.PageTypeGet(uint64(mfn), t.String())
	if m.jrn != nil {
		m.jrn.record(jTypeGet, uint64(mfn), t.String())
	}
	return nil
}

// PutType drops a type reference. When the count reaches zero the frame
// reverts to type none and may be revalidated as something else.
func (m *Memory) PutType(mfn MFN) error {
	pi, err := m.Info(mfn)
	if err != nil {
		return err
	}
	if pi.TypeCount == 0 {
		return fmt.Errorf("mm: type-reference underflow on frame %#x", uint64(mfn))
	}
	pi.TypeCount--
	m.tel.PageTypePut(uint64(mfn), pi.Type.String())
	if m.jrn != nil {
		m.jrn.record(jTypePut, uint64(mfn), pi.Type.String())
	}
	if pi.TypeCount == 0 && !pi.Pinned {
		pi.Type = TypeNone
	}
	return nil
}
