package mm

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/span"
	"repro/internal/telemetry"
)

func testMemory(t *testing.T, frames int) *Memory {
	t.Helper()
	m, err := NewMemory(frames)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSnapshotForkContentIsolation: forks read the sealed content
// through the snapshot and materialize private copies on write, so
// sibling forks and later forks never see each other's writes.
func TestSnapshotForkContentIsolation(t *testing.T) {
	m := testMemory(t, 128)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePhys(mfn.Addr(), []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	s := m.Seal()

	a, b := s.Fork(), s.Fork()
	read := func(fm *Memory) string {
		buf := make([]byte, 6)
		if err := fm.ReadPhys(mfn.Addr(), buf); err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if got := read(a); got != "sealed" {
		t.Fatalf("fork reads %q through snapshot, want \"sealed\"", got)
	}
	if err := a.WritePhys(mfn.Addr(), []byte("forked")); err != nil {
		t.Fatal(err)
	}
	if got := read(a); got != "forked" {
		t.Errorf("fork a reads %q after its own write", got)
	}
	if got := read(b); got != "sealed" {
		t.Errorf("fork b reads %q after a's write; COW leaked", got)
	}
	if got := read(s.Fork()); got != "sealed" {
		t.Errorf("new fork reads %q; the sealed image was corrupted", got)
	}
}

// TestSnapshotForkAllocatorIsolation: each fork owns a private free-set
// copy, so allocation in one fork is invisible to its siblings and both
// get the same deterministic lowest-first frames.
func TestSnapshotForkAllocatorIsolation(t *testing.T) {
	m := testMemory(t, 128)
	if _, err := m.AllocRange(8, DomXen); err != nil {
		t.Fatal(err)
	}
	s := m.Seal()

	a, b := s.Fork(), s.Fork()
	fa, err := a.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("forks allocated different frames (%#x vs %#x); allocator state is shared or nondeterministic", uint64(fa), uint64(fb))
	}
	pa, err := a.Info(fa)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Owner != Dom0 {
		t.Errorf("fork a's frame owned by dom%d, want dom0", pa.Owner)
	}
	// The same frame is still DomXen-free in a third fork: neither the
	// claim nor the page-info write reached the sealed image.
	c := s.Fork()
	pc, err := c.Info(fa)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Owner != DomInvalid {
		t.Errorf("sealed image's frame %#x owned by dom%d after fork allocs, want free", uint64(fa), pc.Owner)
	}
}

// TestSnapshotForkM2PAndTypeIsolation: M2P entries and frame types set
// in a fork stay in the fork.
func TestSnapshotForkM2PAndTypeIsolation(t *testing.T) {
	m := testMemory(t, 128)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	p2m := m.NewP2M(Dom0)
	if err := p2m.Set(7, mfn); err != nil {
		t.Fatal(err)
	}
	s := m.Seal()

	a := s.Fork()
	fp := p2m.ForkOnto(a)
	// Read-through: the sealed translation is visible in the fork.
	if dom, pfn, err := a.M2P(mfn); err != nil || dom != Dom0 || pfn != 7 {
		t.Fatalf("fork M2P = (%v, %v, %v), want (dom0, 7, nil)", dom, pfn, err)
	}
	if _, err := fp.Clear(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.M2P(mfn); err == nil {
		t.Error("fork still translates mfn after Clear")
	}
	if err := a.GetType(mfn, TypeL1); err != nil {
		t.Fatal(err)
	}
	// Sibling fork sees the sealed state: translation intact, no type.
	b := s.Fork()
	if dom, pfn, err := b.M2P(mfn); err != nil || dom != Dom0 || pfn != 7 {
		t.Errorf("sibling M2P = (%v, %v, %v) after fork a's Clear, want sealed (dom0, 7, nil)", dom, pfn, err)
	}
	pi, err := b.Info(mfn)
	if err != nil {
		t.Fatal(err)
	}
	if pi.TypeCount != 0 {
		t.Errorf("sibling sees type count %d from fork a's GetType", pi.TypeCount)
	}
	if p2m.Len() != 1 {
		t.Errorf("sealed p2m length %d after fork mutations, want 1", p2m.Len())
	}
}

// TestRecycleReturnsPristineFork: a recycled fork comes back from the
// pool with all COW state reset, indistinguishable from a fresh fork.
func TestRecycleReturnsPristineFork(t *testing.T) {
	m := testMemory(t, 128)
	mfn, err := m.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePhys(mfn.Addr(), []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	s := m.Seal()

	f := s.Fork()
	if err := f.WritePhys(mfn.Addr(), []byte("dirty!")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Alloc(Dom0); err != nil {
		t.Fatal(err)
	}
	s.Recycle(f)
	if got := s.PoolSize(); got != 1 {
		t.Fatalf("pool size %d after recycle, want 1", got)
	}

	g := s.Fork()
	if g != f {
		t.Fatalf("fork after recycle is not the pooled instance")
	}
	buf := make([]byte, 6)
	if err := g.ReadPhys(mfn.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "sealed" {
		t.Errorf("recycled fork reads %q, want sealed content", buf)
	}
	// The allocator was reset: the recycled fork hands out the same
	// lowest frame a brand-new fork would.
	got, err := g.Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Fork().Alloc(Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("recycled fork allocated %#x, fresh fork %#x", uint64(got), uint64(want))
	}
}

// TestRecycleRejectsForeignMemory: only forks of this snapshot enter
// the pool; fresh machines and other snapshots' forks are ignored.
func TestRecycleRejectsForeignMemory(t *testing.T) {
	s := testMemory(t, 64).Seal()
	s.Recycle(testMemory(t, 64))               // fresh machine
	s.Recycle(testMemory(t, 64).Seal().Fork()) // another snapshot's fork
	s.Recycle(nil)
	if got := s.PoolSize(); got != 0 {
		t.Errorf("pool size %d after foreign recycles, want 0", got)
	}
}

// TestJournalReplayMatchesFreshBoot: replaying the boot journal into
// fresh sinks reproduces exactly the events, counters and span
// structure the same operations emit when the sinks are attached live.
func TestJournalReplayMatchesFreshBoot(t *testing.T) {
	ops := func(m *Memory) {
		if _, err := m.AllocRange(4, DomXen); err != nil {
			t.Fatal(err)
		}
		f, err := m.Alloc(Dom0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.GetType(f, TypeL1); err != nil {
			t.Fatal(err)
		}
		if err := m.PutType(f); err != nil {
			t.Fatal(err)
		}
		g, err := m.Alloc(Dom0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(g); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the same operations with live sinks.
	ref := testMemory(t, 64)
	refRec := telemetry.NewRecorder(0)
	refTree := span.NewTree("cell", refRec.Emitted)
	ref.AttachTelemetry(refRec)
	ref.AttachSpans(refTree)
	ops(ref)

	// Snapshot path: journal with no sinks, seal, fork, replay.
	proto := testMemory(t, 64)
	proto.StartBootJournal()
	ops(proto)
	s := proto.Seal()
	fm := s.Fork()
	rec := telemetry.NewRecorder(0)
	tree := span.NewTree("cell", rec.Emitted)
	fm.AttachTelemetry(rec)
	fm.AttachSpans(tree)
	s.Replay(rec, nil, tree)

	if got, want := rec.Emitted(), refRec.Emitted(); got != want {
		t.Errorf("replay emitted %d events, fresh boot %d", got, want)
	}
	if !reflect.DeepEqual(rec.Events(), refRec.Events()) {
		t.Errorf("replayed events differ from fresh boot\nreplay: %v\nfresh:  %v", rec.Events(), refRec.Events())
	}
	if !reflect.DeepEqual(rec.Counters(), refRec.Counters()) {
		t.Errorf("replayed counters differ from fresh boot\nreplay: %v\nfresh:  %v", rec.Counters(), refRec.Counters())
	}
	// Compare the spans' canonical structure; StartNS/EndNS are wall
	// clock and excluded from every canonical surface.
	gs, ws := tree.Spans(), refTree.Spans()
	if len(gs) != len(ws) {
		t.Fatalf("replayed %d spans, fresh boot %d", len(gs), len(ws))
	}
	for i := range gs {
		g, w := gs[i], ws[i]
		g.StartNS, g.EndNS = 0, 0
		w.StartNS, w.EndNS = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Errorf("span %d differs\nreplay: %+v\nfresh:  %+v", i, g, w)
		}
	}
	if s.BootAllocConsults() != 3 {
		t.Errorf("journal recorded %d alloc consults, want 3 (AllocRange + 2 Allocs)", s.BootAllocConsults())
	}
}

// TestJournalReplayAdvancesFaultPlane: replay drives the injector's hit
// counters exactly as a fresh boot would, so a rule armed beyond the
// boot window fires at the same post-boot hit in a forked cell.
func TestJournalReplayAdvancesFaultPlane(t *testing.T) {
	proto := testMemory(t, 64)
	proto.StartBootJournal()
	if _, err := proto.AllocRange(4, DomXen); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Alloc(Dom0); err != nil {
		t.Fatal(err)
	}
	s := proto.Seal()

	inj := faults.NewInjector().Arm(faults.SiteAlloc, s.BootAllocConsults()+1)
	if inj.WouldFire(faults.SiteAlloc, s.BootAllocConsults()) {
		t.Fatal("rule armed beyond the boot window reported as boot-window")
	}
	fm := s.Fork()
	fm.AttachFaults(inj)
	s.Replay(nil, inj, nil)
	// The very next allocation is the (boot+1)th consult and must fail
	// injected, exactly as on a machine that booted with this injector.
	if _, err := fm.Alloc(Dom0); err == nil {
		t.Fatal("post-boot armed fault did not fire on the fork's next alloc")
	}
	// The sealed image is untouched; a clean fork allocates fine.
	if _, err := s.Fork().Alloc(Dom0); err != nil {
		t.Fatalf("clean fork alloc failed after faulted sibling: %v", err)
	}
}

// TestBootWindowWouldFire covers the fresh-boot fallback predicate.
func TestBootWindowWouldFire(t *testing.T) {
	inj := faults.NewInjector().Arm(faults.SiteAlloc, 3)
	if !inj.WouldFire(faults.SiteAlloc, 3) {
		t.Error("nth=3 within 3 consults should fire")
	}
	if inj.WouldFire(faults.SiteAlloc, 2) {
		t.Error("nth=3 within 2 consults should not fire")
	}
	if inj.WouldFire(faults.SiteHang, 100) {
		t.Error("unarmed site reported as firing")
	}
	var nilInj *faults.Injector
	if nilInj.WouldFire(faults.SiteAlloc, 100) {
		t.Error("nil injector reported as firing")
	}
	// Past hits count: after two hits, nth=3 fires within 1.
	inj.Hit(faults.SiteAlloc)
	inj.Hit(faults.SiteAlloc)
	if !inj.WouldFire(faults.SiteAlloc, 1) {
		t.Error("nth=3 with 2 recorded hits should fire within 1")
	}
	inj.Hit(faults.SiteAlloc) // fires
	if inj.WouldFire(faults.SiteAlloc, 100) {
		t.Error("already-fired rule reported as firing again")
	}
}
