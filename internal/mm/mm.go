// Package mm models the machine-level memory substrate of a virtualized
// host: physical frames, the global frame table that tracks ownership,
// type and reference counts for every frame, and the pseudo-physical to
// machine (P2M) and machine to pseudo-physical (M2P) translation tables
// that a paravirtualizing hypervisor maintains on behalf of its guests.
//
// The package corresponds to the lowest layer of the Xen-style memory
// management stack described in Section V-A of the paper ("Xen Memory
// Management"): everything above it — page-table validation, direct
// paging, the injector — manipulates state that ultimately lives here.
package mm

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Page geometry for the simulated x86-64 machine. Frames are 4 KiB,
// matching the granularity at which the frame table, the P2M and every
// page-table level operate.
const (
	// PageShift is log2 of the machine page size.
	PageShift = 12
	// PageSize is the machine page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits of an address.
	PageMask = PageSize - 1
)

// MFN is a machine frame number: the index of a physical 4 KiB frame in
// host memory. MFNs are globally meaningful — every domain and the
// hypervisor itself refer to the same frame by the same MFN.
type MFN uint64

// PFN is a guest pseudo-physical frame number: the index of a page in a
// guest's own contiguous view of "physical" memory. PFNs are only
// meaningful relative to a domain's P2M table.
type PFN uint64

// PhysAddr is a machine-physical byte address.
type PhysAddr uint64

// Frame returns the machine frame containing the address.
func (a PhysAddr) Frame() MFN { return MFN(a >> PageShift) }

// Offset returns the byte offset of the address within its frame.
func (a PhysAddr) Offset() uint64 { return uint64(a) & PageMask }

// Addr returns the machine-physical address of the first byte of the frame.
func (m MFN) Addr() PhysAddr { return PhysAddr(m) << PageShift }

// DomID identifies a domain (virtual machine). Domain 0 is the privileged
// control domain; IDs at or above DomFirstGuest are unprivileged guests.
// The sentinel owners below mirror Xen's special "system" domains.
type DomID uint16

// Reserved domain identifiers.
const (
	// Dom0 is the privileged control domain.
	Dom0 DomID = 0
	// DomFirstGuest is the first identifier handed to unprivileged guests.
	DomFirstGuest DomID = 1
	// DomXen marks frames owned by the hypervisor itself (text, data,
	// IDT, idle page tables).
	DomXen DomID = 0x7ff2
	// DomIO marks frames that model memory-mapped I/O; they are never
	// handed to the allocator.
	DomIO DomID = 0x7ff1
	// DomInvalid is the owner of frames that belong to nobody (free).
	DomInvalid DomID = 0x7fff
)

// FrameType classifies the current validated use of a machine frame. A
// frame's type gates what the hypervisor's page-table validation allows:
// only TypeWritable frames may be mapped writable by guests, and only
// TypeL1..TypeL4 frames may appear at the corresponding level of a guest
// page-table tree. This is the invariant the XSA-148/182 class of
// vulnerabilities breaks.
type FrameType uint8

// Frame types. The zero value is deliberately invalid so that an
// uninitialized PageInfo is detectable.
const (
	// TypeNone marks a frame with no validated type yet; it can be
	// promoted to any other type.
	TypeNone FrameType = iota + 1
	// TypeWritable marks ordinary guest data that may be mapped writable.
	TypeWritable
	// TypeL1 .. TypeL4 mark frames validated as page tables of the given
	// level. They must never be mapped writable by a guest.
	TypeL1
	TypeL2
	TypeL3
	TypeL4
	// TypeSegDesc marks frames holding segment descriptor tables (GDT/LDT).
	TypeSegDesc
	// TypeGrant marks frames shared through the grant-table mechanism.
	TypeGrant
)

// String returns the Xen-style short name of the frame type.
func (t FrameType) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeWritable:
		return "writable"
	case TypeL1:
		return "l1"
	case TypeL2:
		return "l2"
	case TypeL3:
		return "l3"
	case TypeL4:
		return "l4"
	case TypeSegDesc:
		return "segdesc"
	case TypeGrant:
		return "grant"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// IsPageTable reports whether the type is one of the four page-table
// levels. The 4.13 hardening profile denies guest-writable mappings of
// any frame for which this is true.
func (t FrameType) IsPageTable() bool {
	return t >= TypeL1 && t <= TypeL4
}

// PageTableLevel returns 1..4 for page-table types and 0 otherwise.
func (t FrameType) PageTableLevel() int {
	if !t.IsPageTable() {
		return 0
	}
	return int(t-TypeL1) + 1
}

// TypeForLevel returns the frame type that a page table of the given
// level (1..4) must carry.
func TypeForLevel(level int) (FrameType, error) {
	if level < 1 || level > 4 {
		return TypeNone, fmt.Errorf("mm: no page-table type for level %d", level)
	}
	return TypeL1 + FrameType(level-1), nil
}

// PageInfo is the frame-table record for one machine frame, the analogue
// of Xen's struct page_info. It tracks who owns the frame, how it has
// been validated for use (type + type count), and how many references
// (mappings) exist to it.
type PageInfo struct {
	// Owner is the domain the frame currently belongs to.
	Owner DomID
	// Type is the validated type of the frame.
	Type FrameType
	// TypeCount counts uses of the frame *as its validated type* — e.g.
	// the number of page-table trees an L2 frame is linked into. The
	// type may only change while TypeCount is zero.
	TypeCount uint32
	// RefCount counts general references to the frame (existence
	// references plus mappings). A frame with a nonzero RefCount must
	// not be freed.
	RefCount uint32
	// Pinned records an explicit guest pin of a page-table frame
	// (MMUEXT_PIN_LxTABLE): the type is held even with no mappings.
	Pinned bool
}

// Errors reported by the memory substrate.
var (
	// ErrBadMFN is returned for frame numbers outside machine memory.
	ErrBadMFN = errors.New("mm: machine frame number out of range")
	// ErrBadPhysAddr is returned when a physical byte range leaves memory.
	ErrBadPhysAddr = errors.New("mm: physical address out of range")
	// ErrOutOfMemory is returned when the allocator has no free frames.
	ErrOutOfMemory = errors.New("mm: out of machine memory")
	// ErrFrameBusy is returned when freeing or retyping a frame that
	// still has outstanding references or type uses.
	ErrFrameBusy = errors.New("mm: frame has outstanding references")
	// ErrNotOwner is returned when a domain operates on a foreign frame.
	ErrNotOwner = errors.New("mm: frame not owned by caller")
	// ErrTypeConflict is returned when a frame is used as two
	// incompatible types at once.
	ErrTypeConflict = errors.New("mm: frame type conflict")
	// ErrNoMapping is returned by P2M/M2P lookups with no translation.
	ErrNoMapping = errors.New("mm: no such translation")
)

// Memory is the machine: a flat array of frames plus the frame table and
// the global M2P table. Frame contents are allocated lazily, so a large
// simulated machine costs memory proportional only to the frames touched.
//
// Memory is not safe for concurrent use; the simulator is deterministic
// and single-threaded by design (see DESIGN.md). The campaign engine
// runs environments concurrently by giving each its own Memory.
//
// Free frames are tracked in a two-level bitmap (the indexed free-set):
// bit b of freeWords[w] is set iff frame w*64+b is free, and bit i of
// freeSummary[s] is set iff freeWords[s*64+i] has any free frame. The
// summary makes lowest-free lookup a couple of trailing-zero counts, so
// Alloc, AllocAt and Free are O(1) and AllocRange is O(range) plus a
// word-granular skip over allocated regions.
type Memory struct {
	frames      [][]byte
	pageInfo    []PageInfo
	m2p         []m2pEntry
	freeWords   []uint64
	freeSummary []uint64
	freeCount   int
	allocated   int

	// tel observes allocator and frame-type activity; nil (the
	// default) disables telemetry at near-zero cost.
	tel *telemetry.Recorder

	// flt is the machine's fault-injection plane; nil (the default)
	// disables it at the cost of one predicted branch per allocation.
	flt *faults.Injector

	// spans receives a causal span per range allocation; nil (the
	// default) disables span capture at the same near-zero cost.
	spans *span.Tree

	// snap, when non-nil, marks this Memory as a copy-on-write fork of
	// a sealed Snapshot: unowned frame-table and M2P chunks read
	// through the snapshot and clone on first write, tracked in the
	// ownership bitmaps below; frame contents materialize per frame on
	// first write, tracked in dirtyFrames for arena-style reuse. See
	// snapshot.go.
	snap        *Snapshot
	ownInfo     []uint64
	ownM2P      []uint64
	dirtyFrames []MFN

	// jrn, when non-nil, records boot-time observability activity for
	// snapshot replay (see StartBootJournal).
	jrn *bootJournal
}

// AttachTelemetry installs the machine's telemetry sink. A nil recorder
// (or never calling this) leaves telemetry disabled.
func (m *Memory) AttachTelemetry(r *telemetry.Recorder) { m.tel = r }

// AttachFaults installs the machine's fault-injection plane. A nil
// injector (or never calling this) leaves fault injection disabled.
func (m *Memory) AttachFaults(f *faults.Injector) { m.flt = f }

// AttachSpans installs the machine's causal span tree. A nil tree (or
// never calling this) leaves span capture disabled.
func (m *Memory) AttachSpans(t *span.Tree) { m.spans = t }

type m2pEntry struct {
	dom   DomID
	pfn   PFN
	valid bool
}

// NewMemory creates a machine with the given number of 4 KiB frames. All
// frames start free (owner DomInvalid, type none).
func NewMemory(frames int) (*Memory, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("mm: machine must have at least one frame, got %d", frames)
	}
	m := &Memory{
		frames:      make([][]byte, frames),
		pageInfo:    make([]PageInfo, frames),
		m2p:         make([]m2pEntry, frames),
		freeWords:   make([]uint64, (frames+63)/64),
		freeSummary: make([]uint64, ((frames+63)/64+63)/64),
	}
	for i := range m.pageInfo {
		m.pageInfo[i] = PageInfo{Owner: DomInvalid, Type: TypeNone}
	}
	for i := 0; i < frames; i++ {
		m.setFree(MFN(i))
	}
	return m, nil
}

// NumFrames returns the machine size in frames.
func (m *Memory) NumFrames() int { return len(m.frames) }

// Bytes returns the machine size in bytes.
func (m *Memory) Bytes() uint64 { return uint64(len(m.frames)) * PageSize }

// AllocatedFrames returns how many frames are currently allocated.
func (m *Memory) AllocatedFrames() int { return m.allocated }

// FreeFrames returns how many frames the allocator has available.
func (m *Memory) FreeFrames() int { return m.freeCount }

// ValidMFN reports whether the frame number addresses machine memory.
func (m *Memory) ValidMFN(mfn MFN) bool { return uint64(mfn) < uint64(len(m.frames)) }

// Info returns a pointer to the frame-table entry for the frame so the
// caller can inspect or update counts in place, mirroring how the
// hypervisor manipulates struct page_info. On a snapshot fork the
// returned pointer must be privately owned — callers may write through
// it — so the enclosing chunk is cloned on first access.
func (m *Memory) Info(mfn MFN) (*PageInfo, error) {
	if !m.ValidMFN(mfn) {
		return nil, fmt.Errorf("%w: mfn %#x (machine has %d frames)", ErrBadMFN, uint64(mfn), len(m.frames))
	}
	if m.snap != nil {
		m.ownInfoChunk(mfn)
	}
	return &m.pageInfo[mfn], nil
}

// ReadPhys copies len(buf) bytes starting at the machine-physical address
// into buf. The range may span frames but must stay inside machine memory.
func (m *Memory) ReadPhys(addr PhysAddr, buf []byte) error {
	return m.accessPhys(addr, buf, false)
}

// WritePhys copies buf into machine memory at the physical address.
func (m *Memory) WritePhys(addr PhysAddr, buf []byte) error {
	return m.accessPhys(addr, buf, true)
}

func (m *Memory) accessPhys(addr PhysAddr, buf []byte, write bool) error {
	if len(buf) == 0 {
		return nil
	}
	end := uint64(addr) + uint64(len(buf))
	if end < uint64(addr) || end > m.Bytes() {
		return fmt.Errorf("%w: [%#x, %#x)", ErrBadPhysAddr, uint64(addr), end)
	}
	done := 0
	for done < len(buf) {
		cur := PhysAddr(uint64(addr) + uint64(done))
		off := cur.Offset()
		var n int
		if write {
			n = copy(m.frameWrite(cur.Frame())[off:], buf[done:])
		} else {
			n = copy(buf[done:], m.frameRead(cur.Frame())[off:])
		}
		done += n
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word at the physical address.
func (m *Memory) ReadU64(addr PhysAddr) (uint64, error) {
	var b [8]byte
	if err := m.ReadPhys(addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word at the physical address.
func (m *Memory) WriteU64(addr PhysAddr, v uint64) error {
	var b [8]byte
	putLEU64(b[:], v)
	return m.WritePhys(addr, b[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLEU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
