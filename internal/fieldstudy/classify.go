package fieldstudy

import (
	"fmt"

	"repro/internal/inject"
)

// FunctionalityCount is one row of Table I.
type FunctionalityCount struct {
	// Functionality is the row's abusive functionality.
	Functionality inject.AbusiveFunctionality
	// Assignments counts (CVE, functionality) pairs — the per-row number
	// of Table I.
	Assignments int
	// Synthesized marks rows whose count the paper does not publish.
	Synthesized bool
}

// ClassSummary is one section of Table I: a class header with its CVE
// count and the per-functionality rows beneath it.
type ClassSummary struct {
	// Class is the section.
	Class inject.FunctionalityClass
	// CVECount counts distinct CVEs with at least one functionality in
	// the class — the "– N CVEs" of the section header.
	CVECount int
	// Rows are the per-functionality counts in taxonomy order.
	Rows []FunctionalityCount
}

// TableI is the classification result.
type TableI struct {
	Classes []ClassSummary
	// TotalCVEs is the number of advisories classified.
	TotalCVEs int
	// TotalAssignments is the number of (CVE, functionality) pairs; it
	// exceeds TotalCVEs because some CVEs carry several functionalities.
	TotalAssignments int
}

// Classify aggregates the advisory records into Table I.
func Classify(advisories []Advisory) TableI {
	assignments := make(map[inject.AbusiveFunctionality]int)
	classCVEs := make(map[inject.FunctionalityClass]map[string]bool)
	total := 0
	for _, a := range advisories {
		for _, f := range a.Functionalities {
			assignments[f]++
			total++
			c := f.Class()
			if classCVEs[c] == nil {
				classCVEs[c] = make(map[string]bool)
			}
			classCVEs[c][a.CVE] = true
		}
	}

	synth := SynthesizedCounts()
	var t TableI
	t.TotalCVEs = len(advisories)
	t.TotalAssignments = total
	for _, class := range []inject.FunctionalityClass{
		inject.ClassMemoryAccess, inject.ClassMemoryManagement,
		inject.ClassExceptionalConditions, inject.ClassNonMemory,
	} {
		cs := ClassSummary{Class: class, CVECount: len(classCVEs[class])}
		for _, f := range inject.AllFunctionalities() {
			if f.Class() != class {
				continue
			}
			cs.Rows = append(cs.Rows, FunctionalityCount{
				Functionality: f,
				Assignments:   assignments[f],
				Synthesized:   synth[f],
			})
		}
		t.Classes = append(t.Classes, cs)
	}
	return t
}

// PaperClassCounts returns the per-class CVE counts Table I publishes.
func PaperClassCounts() map[inject.FunctionalityClass]int {
	return map[inject.FunctionalityClass]int{
		inject.ClassMemoryAccess:          35,
		inject.ClassMemoryManagement:      40,
		inject.ClassExceptionalConditions: 11,
		inject.ClassNonMemory:             22,
	}
}

// PaperRowCounts returns the per-functionality counts that appear in the
// published table text.
func PaperRowCounts() map[inject.AbusiveFunctionality]int {
	return map[inject.AbusiveFunctionality]int{
		inject.CorruptVirtualMemoryMapping:   4,
		inject.CorruptPageReference:          4,
		inject.FailMemoryMapping:             2,
		inject.KeepPageAccess:                11,
		inject.InduceFatalException:          6,
		inject.InduceMemoryException:         5,
		inject.InduceHangState:               20,
		inject.UncontrolledInterruptRequests: 2,
	}
}

// Verify checks the classification against every number the paper
// publishes, returning a descriptive error on the first mismatch.
func (t TableI) Verify() error {
	if t.TotalCVEs != 100 {
		return fmt.Errorf("fieldstudy: %d CVEs, paper classified 100", t.TotalCVEs)
	}
	if t.TotalAssignments <= t.TotalCVEs {
		return fmt.Errorf("fieldstudy: %d assignments for %d CVEs; paper reports more functionalities than CVEs",
			t.TotalAssignments, t.TotalCVEs)
	}
	wantClass := PaperClassCounts()
	for _, cs := range t.Classes {
		if cs.CVECount != wantClass[cs.Class] {
			return fmt.Errorf("fieldstudy: class %q has %d CVEs, paper reports %d",
				cs.Class, cs.CVECount, wantClass[cs.Class])
		}
	}
	wantRows := PaperRowCounts()
	for _, cs := range t.Classes {
		for _, row := range cs.Rows {
			want, published := wantRows[row.Functionality]
			if published && row.Assignments != want {
				return fmt.Errorf("fieldstudy: %q has %d assignments, paper reports %d",
					row.Functionality, row.Assignments, want)
			}
		}
	}
	return nil
}
