package fieldstudy_test

import (
	"fmt"

	"repro/internal/fieldstudy"
)

// Classifying the dataset reproduces Table I's published totals.
func ExampleClassify() {
	table := fieldstudy.Classify(fieldstudy.Dataset())
	fmt.Println("CVEs:", table.TotalCVEs)
	fmt.Println("assignments:", table.TotalAssignments)
	for _, cs := range table.Classes {
		fmt.Printf("%s: %d CVEs\n", cs.Class, cs.CVECount)
	}
	// Output:
	// CVEs: 100
	// assignments: 108
	// Memory Access: 35 CVEs
	// Memory Management: 40 CVEs
	// Exceptional Conditions: 11 CVEs
	// Non-Memory Related: 22 CVEs
}
