package fieldstudy_test

import (
	"testing"

	"repro/internal/exploits"
	"repro/internal/fieldstudy"
	"repro/internal/inject"
)

// TestCorpusOfRegistry pins the implemented corpus's distribution: 17
// scenarios over five interface families, 102 campaign cells, and the
// Table I class split. The numbers are derived from the registry, so
// this is the one test to update when the corpus grows.
func TestCorpusOfRegistry(t *testing.T) {
	c := fieldstudy.CorpusOf(exploits.Specs())
	if c.Scenarios != 17 || c.Cells != 102 {
		t.Fatalf("corpus = %d scenarios / %d cells, want 17 / 102", c.Scenarios, c.Cells)
	}

	wantRows := []fieldstudy.CorpusRow{
		{Family: exploits.FamilyMemoryExchange, Scenarios: 5, Cells: 30,
			Functionalities: []inject.AbusiveFunctionality{inject.WriteArbitraryMemory}},
		{Family: exploits.FamilyPageTable, Scenarios: 2, Cells: 12,
			Functionalities: []inject.AbusiveFunctionality{inject.GuestWritablePageTableEntry}},
		{Family: exploits.FamilyGrantTable, Scenarios: 3, Cells: 18,
			Functionalities: []inject.AbusiveFunctionality{inject.KeepPageAccess}},
		{Family: exploits.FamilyEventChannel, Scenarios: 3, Cells: 18,
			Functionalities: []inject.AbusiveFunctionality{inject.UncontrolledInterruptRequests}},
		{Family: exploits.FamilyDomctl, Scenarios: 4, Cells: 24,
			Functionalities: []inject.AbusiveFunctionality{
				inject.InduceHangState, inject.DecreasePageMappingAvailability, inject.ReadUnauthorizedMemory}},
	}
	if len(c.Rows) != len(wantRows) {
		t.Fatalf("rows = %d, want %d", len(c.Rows), len(wantRows))
	}
	for i, want := range wantRows {
		got := c.Rows[i]
		if got.Family != want.Family || got.Scenarios != want.Scenarios || got.Cells != want.Cells {
			t.Errorf("row %d = %s %d/%d, want %s %d/%d",
				i, got.Family, got.Scenarios, got.Cells, want.Family, want.Scenarios, want.Cells)
		}
		if len(got.Functionalities) != len(want.Functionalities) {
			t.Errorf("%s: functionalities = %v, want %v", want.Family, got.Functionalities, want.Functionalities)
			continue
		}
		for j := range want.Functionalities {
			if got.Functionalities[j] != want.Functionalities[j] {
				t.Errorf("%s: functionality %d = %v, want %v",
					want.Family, j, got.Functionalities[j], want.Functionalities[j])
			}
		}
	}

	wantClasses := []fieldstudy.CorpusClassCount{
		{Class: inject.ClassMemoryAccess, Scenarios: 6, Cells: 36},
		{Class: inject.ClassMemoryManagement, Scenarios: 6, Cells: 36},
		{Class: inject.ClassExceptionalConditions, Scenarios: 0, Cells: 0},
		{Class: inject.ClassNonMemory, Scenarios: 5, Cells: 30},
	}
	if len(c.Classes) != len(wantClasses) {
		t.Fatalf("classes = %d, want %d", len(c.Classes), len(wantClasses))
	}
	for i, want := range wantClasses {
		if c.Classes[i] != want {
			t.Errorf("class %d = %+v, want %+v", i, c.Classes[i], want)
		}
	}

	// The per-family and per-class counts are partitions of the corpus.
	var rowS, rowC, clsS, clsC int
	for _, r := range c.Rows {
		rowS += r.Scenarios
		rowC += r.Cells
	}
	for _, cc := range c.Classes {
		clsS += cc.Scenarios
		clsC += cc.Cells
	}
	if rowS != c.Scenarios || rowC != c.Cells || clsS != c.Scenarios || clsC != c.Cells {
		t.Errorf("partitions do not add up: rows %d/%d classes %d/%d total %d/%d",
			rowS, rowC, clsS, clsC, c.Scenarios, c.Cells)
	}
}

// TestCorpusOfEmpty covers the degenerate input.
func TestCorpusOfEmpty(t *testing.T) {
	c := fieldstudy.CorpusOf(nil)
	if c.Scenarios != 0 || c.Cells != 0 || len(c.Rows) != 0 {
		t.Errorf("empty corpus = %+v", c)
	}
	for _, cc := range c.Classes {
		if cc.Scenarios != 0 || cc.Cells != 0 {
			t.Errorf("empty corpus counts class %v", cc)
		}
	}
}
