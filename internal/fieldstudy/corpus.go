package fieldstudy

import (
	"repro/internal/exploits"
	"repro/internal/inject"
)

// CorpusRow summarizes one scenario family of the implemented corpus.
type CorpusRow struct {
	// Family is the hypercall-interface family the scenarios abuse.
	Family string
	// Scenarios counts registry specs in the family.
	Scenarios int
	// Cells counts campaign cells the family schedules: one per
	// (scenario, applicable version, mode).
	Cells int
	// Functionalities are the distinct abusive functionalities the
	// family's scenarios instantiate, in registry order.
	Functionalities []inject.AbusiveFunctionality
}

// Corpus relates the implemented scenario corpus back to the field
// study: how the registry's scenarios and campaign cells distribute
// over the interface families and over Table I's functionality classes.
type Corpus struct {
	// Rows are the per-family counts, ordered by first appearance in
	// the registry.
	Rows []CorpusRow
	// Classes are the per-functionality-class scenario counts in
	// Table I's class order.
	Classes []CorpusClassCount
	// Scenarios is the registry size.
	Scenarios int
	// Cells is the full campaign size: sum over scenarios of
	// (applicable versions x 2 modes).
	Cells int
}

// CorpusClassCount is one functionality class's share of the corpus.
type CorpusClassCount struct {
	Class     inject.FunctionalityClass
	Scenarios int
	Cells     int
}

// CorpusOf computes the corpus distribution of a scenario registry.
// The campaign matrix derives from the same specs, so the cell counts
// here equal the matrix the runner schedules.
func CorpusOf(specs []exploits.Spec) Corpus {
	var c Corpus
	rowIdx := make(map[string]int)
	classIdx := make(map[inject.FunctionalityClass]int)
	for _, class := range []inject.FunctionalityClass{
		inject.ClassMemoryAccess, inject.ClassMemoryManagement,
		inject.ClassExceptionalConditions, inject.ClassNonMemory,
	} {
		classIdx[class] = len(c.Classes)
		c.Classes = append(c.Classes, CorpusClassCount{Class: class})
	}
	for _, s := range specs {
		cells := 2 * len(s.Versions)
		c.Scenarios++
		c.Cells += cells

		i, ok := rowIdx[s.Family]
		if !ok {
			i = len(c.Rows)
			rowIdx[s.Family] = i
			c.Rows = append(c.Rows, CorpusRow{Family: s.Family})
		}
		row := &c.Rows[i]
		row.Scenarios++
		row.Cells += cells
		seen := false
		for _, f := range row.Functionalities {
			if f == s.Functionality {
				seen = true
				break
			}
		}
		if !seen {
			row.Functionalities = append(row.Functionalities, s.Functionality)
		}

		cc := &c.Classes[classIdx[s.Functionality.Class()]]
		cc.Scenarios++
		cc.Cells += cells
	}
	return c
}
