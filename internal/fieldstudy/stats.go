package fieldstudy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/inject"
)

// Stats are the secondary analyses over the advisory dataset — the kind
// of breakdowns the extended study the paper plans ("study in detail
// known vulnerabilities and their abusive functionalities") would report.
type Stats struct {
	// ByYear counts advisories per disclosure year.
	ByYear map[int]int
	// ByComponent counts advisories per affected subsystem.
	ByComponent map[string]int
	// MultiFunctionality counts advisories carrying more than one
	// abusive functionality.
	MultiFunctionality int
	// TopFunctionalities are the most common functionalities, ordered.
	TopFunctionalities []FunctionalityCount
}

// Analyze computes the breakdowns.
func Analyze(advisories []Advisory) Stats {
	s := Stats{
		ByYear:      make(map[int]int),
		ByComponent: make(map[string]int),
	}
	counts := make(map[inject.AbusiveFunctionality]int)
	for _, a := range advisories {
		s.ByYear[a.Year]++
		s.ByComponent[a.Component]++
		if len(a.Functionalities) > 1 {
			s.MultiFunctionality++
		}
		for _, f := range a.Functionalities {
			counts[f]++
		}
	}
	synth := SynthesizedCounts()
	for f, n := range counts {
		s.TopFunctionalities = append(s.TopFunctionalities, FunctionalityCount{
			Functionality: f, Assignments: n, Synthesized: synth[f],
		})
	}
	sort.Slice(s.TopFunctionalities, func(i, j int) bool {
		a, b := s.TopFunctionalities[i], s.TopFunctionalities[j]
		if a.Assignments != b.Assignments {
			return a.Assignments > b.Assignments
		}
		return a.Functionality < b.Functionality
	})
	return s
}

// Summary renders the analyses.
func (s Stats) Summary() string {
	var b strings.Builder
	b.WriteString("Advisory dataset breakdowns\n")
	years := make([]int, 0, len(s.ByYear))
	for y := range s.ByYear {
		years = append(years, y)
	}
	sort.Ints(years)
	b.WriteString("  by year:")
	for _, y := range years {
		fmt.Fprintf(&b, " %d:%d", y, s.ByYear[y])
	}
	b.WriteString("\n  by component:\n")
	comps := make([]string, 0, len(s.ByComponent))
	for c := range s.ByComponent {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(&b, "    %-36s %d\n", c, s.ByComponent[c])
	}
	fmt.Fprintf(&b, "  multi-functionality advisories: %d\n", s.MultiFunctionality)
	b.WriteString("  most common functionalities:\n")
	for i, fc := range s.TopFunctionalities {
		if i == 5 {
			break
		}
		fmt.Fprintf(&b, "    %-46s %d\n", fc.Functionality, fc.Assignments)
	}
	return b.String()
}
