// Package fieldstudy reproduces the preliminary abusive-functionality
// study of Section IV-D: 100 memory-related Xen advisories individually
// classified by the advantage an adversary acquires from each, yielding
// Table I.
//
// The paper publishes the class totals (Memory Access 35, Memory
// Management 40, Exceptional Conditions 11, Non-Memory 22 — more than
// 100 because some CVEs carry more than one functionality) and eight of
// the per-functionality counts. The records here are a synthetic
// dataset constructed to reproduce every published number exactly; the
// per-functionality splits the text leaves unstated are synthesized and
// flagged (see DESIGN.md §4). Two advisory IDs the paper names as
// multi-functionality — CVE-2019-17343 and CVE-2020-27672 — are pinned.
package fieldstudy

import (
	"fmt"

	"repro/internal/inject"
)

// Advisory is one classified vulnerability record, carrying the metadata
// fields the study describes collecting (advisory report, NVD/CVE data,
// patch context).
type Advisory struct {
	// CVE is the CVE identifier.
	CVE string
	// XSA is the Xen Security Advisory number.
	XSA string
	// Year is the disclosure year.
	Year int
	// Component is the affected subsystem.
	Component string
	// Title is a short description of the flaw.
	Title string
	// Functionalities are the abusive functionalities an attacker can
	// acquire by exploiting the flaw (usually one, sometimes two).
	Functionalities []inject.AbusiveFunctionality
}

// dualEntry pins one multi-functionality advisory.
type dualEntry struct {
	cve  string
	xsa  string
	year int
	f1   inject.AbusiveFunctionality
	f2   inject.AbusiveFunctionality
}

// duals are the eight advisories classified under two functionalities,
// which is why Table I's class totals sum to 108 over 100 CVEs. The
// first two IDs are the ones the paper cites as examples.
var duals = []dualEntry{
	{"CVE-2019-17343", "XSA-305", 2019, inject.WriteUnauthorizedMemory, inject.InduceHangState},
	{"CVE-2020-27672", "XSA-345", 2020, inject.ReadWriteUnauthorizedMemory, inject.InduceHangState},
	{"CVE-2015-8550", "XSA-155", 2015, inject.ReadUnauthorizedMemory, inject.InduceFatalException},
	{"CVE-2017-8903", "XSA-213", 2017, inject.WriteArbitraryMemory, inject.InduceHangState},
	{"CVE-2016-9379", "XSA-198", 2016, inject.CorruptVirtualMemoryMapping, inject.InduceMemoryException},
	{"CVE-2015-7835", "XSA-148", 2015, inject.GuestWritablePageTableEntry, inject.InduceHangState},
	{"CVE-2021-28698", "XSA-380", 2021, inject.KeepPageAccess, inject.InduceHangState},
	{"CVE-2013-1918", "XSA-45", 2013, inject.UncontrolledMemoryAllocation, inject.InduceFatalException},
}

// singles gives the single-functionality record count per functionality.
// Together with the duals these reproduce Table I's assignment counts.
var singles = []struct {
	f inject.AbusiveFunctionality
	n int
}{
	{inject.ReadUnauthorizedMemory, 11},
	{inject.WriteUnauthorizedMemory, 7},
	{inject.WriteArbitraryMemory, 5},
	{inject.ReadWriteUnauthorizedMemory, 4},
	{inject.FailMemoryAccess, 4},
	{inject.CorruptVirtualMemoryMapping, 3},
	{inject.CorruptPageReference, 4},
	{inject.DecreasePageMappingAvailability, 7},
	{inject.GuestWritablePageTableEntry, 5},
	{inject.FailMemoryMapping, 2},
	{inject.UncontrolledMemoryAllocation, 5},
	{inject.KeepPageAccess, 10},
	{inject.InduceFatalException, 4},
	{inject.InduceMemoryException, 4},
	{inject.InduceHangState, 15},
	{inject.UncontrolledInterruptRequests, 2},
}

// componentFor names a plausible affected subsystem per functionality.
func componentFor(f inject.AbusiveFunctionality) string {
	switch f.Class() {
	case inject.ClassMemoryAccess:
		return "hypercall argument handling"
	case inject.ClassMemoryManagement:
		return "memory management / page tables"
	case inject.ClassExceptionalConditions:
		return "exception and assertion paths"
	default:
		return "scheduling / interrupt delivery"
	}
}

func titleFor(f inject.AbusiveFunctionality, i int) string {
	switch f {
	case inject.ReadUnauthorizedMemory:
		return fmt.Sprintf("uninitialized field leaked through hypercall output (variant %d)", i+1)
	case inject.WriteUnauthorizedMemory:
		return fmt.Sprintf("bounds check bypass corrupts adjacent hypervisor state (variant %d)", i+1)
	case inject.WriteArbitraryMemory:
		return fmt.Sprintf("unchecked guest handle permits write-what-where (variant %d)", i+1)
	case inject.ReadWriteUnauthorizedMemory:
		return fmt.Sprintf("stale mapping grants bidirectional access to freed pages (variant %d)", i+1)
	case inject.FailMemoryAccess:
		return fmt.Sprintf("race makes a legitimate access fail unpredictably (variant %d)", i+1)
	case inject.CorruptVirtualMemoryMapping:
		return fmt.Sprintf("translation corrupted during concurrent update (variant %d)", i+1)
	case inject.CorruptPageReference:
		return fmt.Sprintf("reference count imbalance on error path (variant %d)", i+1)
	case inject.DecreasePageMappingAvailability:
		return fmt.Sprintf("guest can exhaust mapping slots of a shared area (variant %d)", i+1)
	case inject.GuestWritablePageTableEntry:
		return fmt.Sprintf("validation gap leaves a page-table entry guest-writable (variant %d)", i+1)
	case inject.FailMemoryMapping:
		return fmt.Sprintf("mapping operation fails silently under contention (variant %d)", i+1)
	case inject.UncontrolledMemoryAllocation:
		return fmt.Sprintf("unbounded allocation reachable from guest input (variant %d)", i+1)
	case inject.KeepPageAccess:
		return fmt.Sprintf("page reference retained after release to the hypervisor (variant %d)", i+1)
	case inject.InduceFatalException:
		return fmt.Sprintf("reachable BUG()/ASSERT crashes the host (variant %d)", i+1)
	case inject.InduceMemoryException:
		return fmt.Sprintf("unaligned or poisoned access raises a hardware exception (variant %d)", i+1)
	case inject.InduceHangState:
		return fmt.Sprintf("unbounded loop over guest-controlled state wedges a CPU (variant %d)", i+1)
	case inject.UncontrolledInterruptRequests:
		return fmt.Sprintf("guest can trigger arbitrary interrupt storms (variant %d)", i+1)
	default:
		return fmt.Sprintf("unclassified memory flaw (variant %d)", i+1)
	}
}

// Dataset returns the 100 classified advisories. Construction is
// deterministic, so counts and IDs are stable across runs. The slice,
// every Advisory, and each Advisory's Functionalities slice are freshly
// allocated per call — callers (including concurrent campaign workers)
// may mutate the result without affecting other callers.
func Dataset() []Advisory {
	out := make([]Advisory, 0, 100)
	for _, d := range duals {
		out = append(out, Advisory{
			CVE:             d.cve,
			XSA:             d.xsa,
			Year:            d.year,
			Component:       componentFor(d.f1),
			Title:           titleFor(d.f1, 0) + "; also " + titleFor(d.f2, 0),
			Functionalities: []inject.AbusiveFunctionality{d.f1, d.f2},
		})
	}
	// Synthetic-but-plausible identifiers: sequential XSA numbers in the
	// study's era, CVE years cycling through 2013-2021.
	xsa := 400
	seq := 0
	for _, s := range singles {
		for i := 0; i < s.n; i++ {
			year := 2013 + seq%9
			out = append(out, Advisory{
				CVE:             fmt.Sprintf("CVE-%d-%04d", year, 10000+seq),
				XSA:             fmt.Sprintf("XSA-%d", xsa),
				Year:            year,
				Component:       componentFor(s.f),
				Title:           titleFor(s.f, i),
				Functionalities: []inject.AbusiveFunctionality{s.f},
			})
			xsa++
			seq++
		}
	}
	return out
}

// SynthesizedCounts reports which per-functionality splits are not
// published in the paper and were synthesized here (the class totals
// they roll up into are published and reproduced exactly).
func SynthesizedCounts() map[inject.AbusiveFunctionality]bool {
	return map[inject.AbusiveFunctionality]bool{
		inject.ReadUnauthorizedMemory:          true,
		inject.WriteUnauthorizedMemory:         true,
		inject.WriteArbitraryMemory:            true,
		inject.ReadWriteUnauthorizedMemory:     true,
		inject.FailMemoryAccess:                true,
		inject.DecreasePageMappingAvailability: true,
		inject.GuestWritablePageTableEntry:     true,
		inject.UncontrolledMemoryAllocation:    true,
	}
}
