package fieldstudy

import (
	"strings"
	"testing"

	"repro/internal/inject"
)

func TestDatasetSize(t *testing.T) {
	ds := Dataset()
	if len(ds) != 100 {
		t.Fatalf("dataset has %d advisories, want 100", len(ds))
	}
}

func TestDatasetIsDeterministic(t *testing.T) {
	a, b := Dataset(), Dataset()
	for i := range a {
		if a[i].CVE != b[i].CVE || len(a[i].Functionalities) != len(b[i].Functionalities) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestDatasetUniqueIDs(t *testing.T) {
	seenCVE := make(map[string]bool)
	seenXSA := make(map[string]bool)
	for _, a := range Dataset() {
		if seenCVE[a.CVE] {
			t.Errorf("duplicate CVE %s", a.CVE)
		}
		if seenXSA[a.XSA] {
			t.Errorf("duplicate XSA %s", a.XSA)
		}
		seenCVE[a.CVE] = true
		seenXSA[a.XSA] = true
	}
}

func TestDatasetRecordsAreComplete(t *testing.T) {
	for _, a := range Dataset() {
		if !strings.HasPrefix(a.CVE, "CVE-") || !strings.HasPrefix(a.XSA, "XSA-") {
			t.Errorf("malformed identifiers: %q %q", a.CVE, a.XSA)
		}
		if a.Year < 2013 || a.Year > 2021 {
			t.Errorf("%s: year %d outside the study era", a.CVE, a.Year)
		}
		if a.Component == "" || a.Title == "" {
			t.Errorf("%s: missing metadata", a.CVE)
		}
		if len(a.Functionalities) == 0 || len(a.Functionalities) > 2 {
			t.Errorf("%s: %d functionalities", a.CVE, len(a.Functionalities))
		}
	}
}

func TestPaperCitedMultiFunctionalityCVEs(t *testing.T) {
	// "some CVEs can have more than one abusive functionality ...
	// e.g., CVE-2019-17343, CVE-2020-27672"
	want := map[string]bool{"CVE-2019-17343": false, "CVE-2020-27672": false}
	for _, a := range Dataset() {
		if _, ok := want[a.CVE]; ok {
			if len(a.Functionalities) < 2 {
				t.Errorf("%s should carry multiple functionalities", a.CVE)
			}
			want[a.CVE] = true
		}
	}
	for cve, seen := range want {
		if !seen {
			t.Errorf("paper-cited %s missing from dataset", cve)
		}
	}
}

func TestClassifyReproducesTableI(t *testing.T) {
	table := Classify(Dataset())
	if err := table.Verify(); err != nil {
		t.Fatal(err)
	}
	if table.TotalAssignments != 108 {
		t.Errorf("assignments = %d, want 108 (35+40+11+22)", table.TotalAssignments)
	}
	// Class sections in Table I order.
	wantOrder := []inject.FunctionalityClass{
		inject.ClassMemoryAccess, inject.ClassMemoryManagement,
		inject.ClassExceptionalConditions, inject.ClassNonMemory,
	}
	if len(table.Classes) != len(wantOrder) {
		t.Fatalf("classes = %d", len(table.Classes))
	}
	for i, cs := range table.Classes {
		if cs.Class != wantOrder[i] {
			t.Errorf("class %d = %v, want %v", i, cs.Class, wantOrder[i])
		}
	}
	// Every row's class assignment is internally consistent, and
	// synthesized flags only appear on unpublished rows.
	published := PaperRowCounts()
	for _, cs := range table.Classes {
		sum := 0
		for _, row := range cs.Rows {
			if row.Functionality.Class() != cs.Class {
				t.Errorf("row %v filed under %v", row.Functionality, cs.Class)
			}
			if _, pub := published[row.Functionality]; pub && row.Synthesized {
				t.Errorf("%v is published but flagged synthesized", row.Functionality)
			}
			if _, pub := published[row.Functionality]; !pub && !row.Synthesized {
				t.Errorf("%v is unpublished but not flagged synthesized", row.Functionality)
			}
			sum += row.Assignments
		}
		// Per-class assignment sums at least reach the CVE count
		// (functionality assignments within a class >= distinct CVEs).
		if sum < cs.CVECount {
			t.Errorf("class %v: %d assignments < %d CVEs", cs.Class, sum, cs.CVECount)
		}
	}
}

func TestClassifyEmptyDataset(t *testing.T) {
	table := Classify(nil)
	if table.TotalCVEs != 0 || table.TotalAssignments != 0 {
		t.Errorf("empty classify = %+v", table)
	}
	if err := table.Verify(); err == nil {
		t.Error("Verify accepted an empty classification")
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	ds := Dataset()
	// Drop one record: class counts must stop matching.
	table := Classify(ds[:99])
	if err := table.Verify(); err == nil {
		t.Error("Verify accepted a 99-record classification")
	}
	// Flip one functionality: a published row count must break.
	mutated := make([]Advisory, len(ds))
	copy(mutated, ds)
	for i := range mutated {
		if mutated[i].Functionalities[0] == inject.KeepPageAccess {
			mutated[i].Functionalities = []inject.AbusiveFunctionality{inject.FailMemoryMapping}
			break
		}
	}
	if err := Classify(mutated).Verify(); err == nil {
		t.Error("Verify accepted a mutated classification")
	}
}

func TestAnalyzeBreakdowns(t *testing.T) {
	s := Analyze(Dataset())
	totalByYear := 0
	for y, n := range s.ByYear {
		if y < 2013 || y > 2021 {
			t.Errorf("year %d outside era", y)
		}
		totalByYear += n
	}
	if totalByYear != 100 {
		t.Errorf("year counts sum to %d", totalByYear)
	}
	totalByComp := 0
	for _, n := range s.ByComponent {
		totalByComp += n
	}
	if totalByComp != 100 {
		t.Errorf("component counts sum to %d", totalByComp)
	}
	if s.MultiFunctionality != 8 {
		t.Errorf("multi-functionality = %d, want 8", s.MultiFunctionality)
	}
	if len(s.TopFunctionalities) != 16 {
		t.Fatalf("functionalities = %d", len(s.TopFunctionalities))
	}
	// The most common functionality in Table I is Induce a Hang State (20).
	top := s.TopFunctionalities[0]
	if top.Functionality != inject.InduceHangState || top.Assignments != 20 {
		t.Errorf("top = %v (%d)", top.Functionality, top.Assignments)
	}
	// Ordering is non-increasing.
	for i := 1; i < len(s.TopFunctionalities); i++ {
		if s.TopFunctionalities[i].Assignments > s.TopFunctionalities[i-1].Assignments {
			t.Errorf("ordering broken at %d", i)
		}
	}
	for _, want := range []string{"by year", "multi-functionality advisories: 8", "Induce a Hang State"} {
		if !strings.Contains(s.Summary(), want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.MultiFunctionality != 0 || len(s.TopFunctionalities) != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	if s.Summary() == "" {
		t.Error("empty summary")
	}
}
