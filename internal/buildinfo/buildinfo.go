// Package buildinfo centralizes the build's identity: the version the
// CLI's -version flag prints, the /healthz endpoint reports, and the
// repro_build_info metric exposes. Keeping it in one leaf package lets
// cmd/repro and the obs server agree without an import cycle.
package buildinfo

import "runtime"

// Version is the repro build version, bumped per released PR.
const Version = "0.9.0"

// GoVersion reports the toolchain the binary was built with.
func GoVersion() string { return runtime.Version() }
