// Package repro holds the benchmark harness: one benchmark per table and
// figure of the paper (regenerating the artifact per iteration from live
// experiment runs), plus microbenchmarks of the substrate operations and
// the ablations DESIGN.md §5 calls out.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/events"
	"repro/internal/exploits"
	"repro/internal/fieldstudy"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/txstore"
	"repro/internal/workload"
)

// --- One benchmark per table and figure ---

// BenchmarkTableI regenerates Table I: classify the 100-advisory dataset
// and render the class/functionality table.
func BenchmarkTableI(b *testing.B) {
	ds := fieldstudy.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := fieldstudy.Classify(ds)
		if err := t.Verify(); err != nil {
			b.Fatal(err)
		}
		_ = report.TableI(t)
	}
}

// BenchmarkTableII regenerates Table II from the use-case intrusion
// models.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.TableII(inject.UseCaseModels())
	}
}

// BenchmarkTableIII runs the full RQ2/RQ3 injection campaign (4 use
// cases x 2 non-vulnerable versions, fresh environment each) and renders
// the table.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := campaign.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		_ = report.TableIII(rows, []string{"4.8", "4.13"})
	}
}

// BenchmarkFig1 and BenchmarkFig2 regenerate the conceptual diagrams.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Fig1()
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Fig2()
	}
}

// BenchmarkFig3 builds both intrusion state machines and runs the
// equivalence check.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Fig3(inject.GuestWritablePageTableEntry)
	}
}

// BenchmarkFig4 runs the full RQ1 validation (4 use cases x exploit and
// injection on 4.6) and renders the comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := campaign.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Fig4(rows)
	}
}

// BenchmarkFullMatrix runs the complete 24-run campaign the repro binary
// prints with -matrix, on the serial (Workers: 1) path.
func BenchmarkFullMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := campaign.RunMatrix()
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Matrix(entries)
	}
}

// BenchmarkMatrixParallel runs the same 24-run campaign through the
// parallel engine at increasing pool sizes. Output is byte-identical to
// the serial path at every size; on a machine with >= 4 CPUs the larger
// pools should cut wall-clock time by the core count (each cell is an
// independent fresh environment, so the campaign is embarrassingly
// parallel). Compare against BenchmarkFullMatrix for the speedup.
func BenchmarkMatrixParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			r := &campaign.Runner{Workers: w}
			for i := 0; i < b.N; i++ {
				entries, err := r.RunMatrix()
				if err != nil {
					b.Fatal(err)
				}
				_ = report.Matrix(entries)
			}
		})
	}
}

// BenchmarkMatrixTelemetry runs the 24-run campaign with telemetry off
// (nil registry: every instrumented path takes the predicted-not-taken
// nil branch), on (per-cell recorder, ring events, counter merges
// into the shared registry), and on with the live observability server
// installed as the progress hook and listening (per-cell state updates
// under the server mutex, plus a goroutine accepting scrapes). The
// "off" sub-benchmark is the guard for the disabled-sink contract: it
// must stay within noise of BenchmarkMatrixParallel's pre-telemetry
// numbers (the same guard covers the event bus — a nil Sched hook is
// the same predicted-not-taken nil branch); "server" tracks the
// -listen overhead recorded in BENCH_obs.json; "coverage" tracks the
// cost of the per-cell coverage maps on top of plain telemetry (the
// -coverage flag's overhead — with coverage disabled, "on" is the
// baseline that must not move); "stream" tracks the event-bus +
// scheduler-timeline overhead (-listen's bus with no subscriber
// draining it, the common case of a campaign nobody is watching).
func BenchmarkMatrixTelemetry(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry, progress campaign.Progress, cov *coverage.Collector, sched campaign.SchedObserver) {
		r := &campaign.Runner{Workers: 4, Telemetry: reg, Progress: progress, Coverage: cov, Sched: sched}
		for i := 0; i < b.N; i++ {
			entries, err := r.RunMatrix()
			if err != nil {
				b.Fatal(err)
			}
			_ = report.Matrix(entries)
			if cov != nil {
				_ = cov.Report()
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, nil, nil, nil) })
	b.Run("on", func(b *testing.B) { run(b, telemetry.NewRegistry(), nil, nil, nil) })
	b.Run("server", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		srv := obs.NewServer(reg)
		if _, err := srv.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Shutdown(context.Background())
		b.ResetTimer()
		run(b, reg, srv, nil, nil)
	})
	b.Run("coverage", func(b *testing.B) {
		run(b, telemetry.NewRegistry(), nil, coverage.NewCollector(), nil)
	})
	b.Run("stream", func(b *testing.B) {
		bus := events.NewBus(0, 0)
		defer bus.Close()
		run(b, telemetry.NewRegistry(), nil, nil,
			events.Fanout{&events.Publisher{Bus: bus}, events.NewTimeline()})
	})
}

// --- Substrate microbenchmarks ---

// Allocator microbenchmarks. The free-set used to be a linear-scan free
// list (AllocAt O(n), AllocRange O(n^2) worst case); it is now a
// two-level bitmap with O(1) Alloc/AllocAt/Free and O(range)
// AllocRange, which these benchmarks track on a 64 Ki-frame machine —
// large enough that a linear scan would dominate per-environment boot.

const benchFrames = 1 << 16

func benchMemory(b *testing.B) *mm.Memory {
	b.Helper()
	m, err := mm.NewMemory(benchFrames)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAlloc measures one lowest-first Alloc/Free cycle with half
// the machine already allocated (the allocator's steady state during an
// environment boot).
func BenchmarkAlloc(b *testing.B) {
	m := benchMemory(b)
	for i := 0; i < benchFrames/2; i++ {
		if _, err := m.Alloc(mm.Dom0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mfn, err := m.Alloc(mm.Dom0)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Free(mfn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocAt measures claiming a specific high frame — the case
// the old free list scanned O(n) for.
func BenchmarkAllocAt(b *testing.B) {
	m := benchMemory(b)
	target := mm.MFN(benchFrames - 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AllocAt(target, mm.Dom0); err != nil {
			b.Fatal(err)
		}
		if err := m.Free(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRange measures finding and claiming a 64-frame run
// beyond a fragmented low region (every other frame of the first 4096
// allocated) — the case the old implementation re-scanned the whole
// free list for at every candidate start.
func BenchmarkAllocRange(b *testing.B) {
	m := benchMemory(b)
	for f := 0; f < 4096; f += 2 {
		if err := m.AllocAt(mm.MFN(f), mm.Dom0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start, err := m.AllocRange(64, mm.Dom0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 64; j++ {
			if err := m.Free(start + mm.MFN(j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchEnv(b *testing.B, v hv.Version, mode campaign.Mode) *campaign.Environment {
	b.Helper()
	e, err := campaign.NewEnvironment(v, mode)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkBootEnvironment measures building one full environment:
// hypervisor boot plus four domains with page tables and kernels.
func BenchmarkBootEnvironment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeInjection); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotBuild measures the one-time cost of booting and
// sealing a (version, mode) environment snapshot — paid once per
// process per pair, then amortized over every forked cell.
func BenchmarkSnapshotBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := campaign.BuildSnapshot(hv.Version46(), campaign.ModeInjection); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellFork measures stamping one cell environment out of the
// sealed snapshot — the per-cell setup cost that replaces the full boot
// measured by BenchmarkBootEnvironment. The budget is <10µs per fork.
func BenchmarkCellFork(b *testing.B) {
	// Warm the cache so the one-time build is not measured.
	if _, recycle, err := campaign.NewForkedEnvironment(hv.Version46(), campaign.ModeInjection); err != nil {
		b.Fatal(err)
	} else {
		recycle()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, recycle, err := campaign.NewForkedEnvironment(hv.Version46(), campaign.ModeInjection)
		if err != nil {
			b.Fatal(err)
		}
		recycle()
	}
}

// BenchmarkPageWalk measures one 4-level guest translation.
func BenchmarkPageWalk(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeExploit)
	d := e.Attacker.Domain()
	va := d.PhysmapVA(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HV.Walker().Translate(d.CR3(), va, pagetable.AccessRead, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercallDispatch measures the cheapest hypercall round trip.
func BenchmarkHypercallDispatch(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeExploit)
	d := e.Attacker.Domain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Hypercall(hv.HypercallConsoleIO, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMUUpdate measures one validated PTE update (map + unmap so
// reference counts stay balanced across iterations).
func BenchmarkMMUUpdate(b *testing.B) {
	e := benchEnv(b, hv.Version48(), campaign.ModeExploit)
	d := e.Attacker.Domain()
	pfn, err := d.AllocPage()
	if err != nil {
		b.Fatal(err)
	}
	target, err := d.P2M().Lookup(pfn)
	if err != nil {
		b.Fatal(err)
	}
	base, err := pagetable.LeafEntryAddr(e.HV.Memory(), d.CR3(), d.PhysmapVA(0))
	if err != nil {
		b.Fatal(err)
	}
	ptr := base + mm.PhysAddr((uint64(d.Frames())+30)*pagetable.EntrySize)
	entry := pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Hypercall(hv.HypercallMMUUpdate, &hv.MMUUpdateArgs{
			Updates: []hv.MMUUpdate{{Ptr: ptr, Val: entry}, {Ptr: ptr, Val: 0}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryExchange measures the XSA-212 hypercall on its benign
// path (populate + exchange per iteration).
func BenchmarkMemoryExchange(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeExploit)
	d := e.Attacker.Domain()
	dstPFN, err := d.AllocPage()
	if err != nil {
		b.Fatal(err)
	}
	dst := d.PhysmapVA(dstPFN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop := &hv.PopulatePhysmapArgs{PFN: mm.PFN(0x20000 + i)}
		if err := d.Hypercall(hv.HypercallMemoryOp, pop); err != nil {
			b.Fatal(err)
		}
		if err := d.Hypercall(hv.HypercallMemoryOp, &hv.ExchangeArgs{
			In: []mm.PFN{pop.PFN}, OutStart: dst,
		}); err != nil {
			b.Fatal(err)
		}
		// Release the exchanged frame so the machine does not fill up.
		if err := d.Hypercall(hv.HypercallMemoryOp, &hv.DecreaseReservationArgs{PFN: pop.PFN}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExceptionDelivery measures one #PF delivery through the
// in-memory IDT to the builtin handler.
func BenchmarkExceptionDelivery(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeExploit)
	vcpu := e.Attacker.Domain().VCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vcpu.DeliverException(cpu.VectorPageFault); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectorWriteLinear measures the injector's linear-mode write
// (hypercall dispatch + layout translation + store).
func BenchmarkInjectorWriteLinear(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeInjection)
	dst := e.HV.IDTR().Base + 0x700 // an unused IDT slot's bytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Injector.WriteLinear64(dst, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploitScenario measures one full XSA-182-test run in a fresh
// environment (the per-run cost of a campaign cell).
func BenchmarkExploitScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(hv.Version46(), "XSA-182-test", campaign.ModeExploit); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationInjectorPath compares the injector's guest-facing
// hypercall route against a direct in-hypervisor write: the cost of the
// portable interface the paper argues for.
func BenchmarkAblationInjectorPath(b *testing.B) {
	b.Run("hypercall", func(b *testing.B) {
		e := benchEnv(b, hv.Version46(), campaign.ModeInjection)
		dst := e.HV.IDTR().Base + 0x700
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Injector.WriteLinear64(dst, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		e := benchEnv(b, hv.Version46(), campaign.ModeInjection)
		dst := e.HV.IDTR().Base + 0x700
		buf := make([]byte, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.HV.WriteHV(dst, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLinearVsPhysMode compares the injector's two address
// modes: linear (translate per page) vs physical (direct after the
// map_domain_page-style mapping).
func BenchmarkAblationLinearVsPhysMode(b *testing.B) {
	e := benchEnv(b, hv.Version46(), campaign.ModeInjection)
	heap := e.HV.HeapBase() + 1
	linear := uint64(0xffff830000000000) + uint64(heap)*mm.PageSize // directmap VA
	buf := make([]byte, 64)
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := e.Injector.ArbitraryAccess(linear, buf, inject.WriteLinear); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("physical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := e.Injector.ArbitraryAccess(uint64(heap.Addr()), buf, inject.WritePhys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationValidationByVersion compares mmu_update cost across
// version profiles: the price of the added validation and hardening.
func BenchmarkAblationValidationByVersion(b *testing.B) {
	for _, v := range hv.Versions() {
		b.Run(v.Name, func(b *testing.B) {
			e := benchEnv(b, v, campaign.ModeExploit)
			d := e.Attacker.Domain()
			pfn, err := d.AllocPage()
			if err != nil {
				b.Fatal(err)
			}
			target, err := d.P2M().Lookup(pfn)
			if err != nil {
				b.Fatal(err)
			}
			base, err := pagetable.LeafEntryAddr(e.HV.Memory(), d.CR3(), d.PhysmapVA(0))
			if err != nil {
				b.Fatal(err)
			}
			ptr := base + mm.PhysAddr((uint64(d.Frames())+31)*pagetable.EntrySize)
			entry := pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Hypercall(hv.HypercallMMUUpdate, &hv.MMUUpdateArgs{
					Updates: []hv.MMUUpdate{{Ptr: ptr, Val: entry}, {Ptr: ptr, Val: 0}},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScanGranularity varies how the XSA-148 scan reads the
// window (per-page fingerprint read vs whole-window read), the kind of
// design choice an injector campaign tunes.
func BenchmarkAblationScanGranularity(b *testing.B) {
	newWindow := func(b *testing.B) (*campaign.Environment, *exploits.Outcome) {
		b.Helper()
		e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
		if err != nil {
			b.Fatal(err)
		}
		env, err := e.ScenarioEnv(campaign.ModeExploit)
		if err != nil {
			b.Fatal(err)
		}
		scen, err := exploits.ScenarioByName("XSA-148-priv")
		if err != nil {
			b.Fatal(err)
		}
		return e, scen.Run(env)
	}
	b.Run("per-page-64B", func(b *testing.B) {
		e, o := newWindow(b)
		sig := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < 512; p++ {
				if err := e.Attacker.Peek(o.Artifacts.WindowVA+uint64(p)*mm.PageSize, sig); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("whole-window", func(b *testing.B) {
		e, o := newWindow(b)
		buf := make([]byte, pagetable.SuperpageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Attacker.Peek(o.Artifacts.WindowVA, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBaselineComparison runs the randomized-injection and
// hypercall-baseline campaigns head to head (the coverage argument of
// the fuzz extension, DESIGN.md §5).
func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := campaign.CompareWithBaseline(hv.Version413(), 10, 2023); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateInjector measures the second injector's cheapest
// operation (keep-page-access induction).
func BenchmarkStateInjector(b *testing.B) {
	mem, err := mm.NewMemory(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	h, err := hv.New(mem, hv.Version413())
	if err != nil {
		b.Fatal(err)
	}
	if err := inject.EnableStateOps(h); err != nil {
		b.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		b.Fatal(err)
	}
	c := inject.NewStateClient(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaked, err := c.KeepPageAccess()
		if err != nil {
			b.Fatal(err)
		}
		// Reap the leaked frame between iterations so the bench does not
		// exhaust the machine (reaping is not part of the measured op's
		// semantics, but it is symmetrical and cheap).
		if err := h.Memory().PutRef(leaked); err != nil {
			b.Fatal(err)
		}
		if err := h.Memory().PutType(leaked); err != nil {
			b.Fatal(err)
		}
		if err := h.Memory().Free(leaked); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVenomInjection measures the Section III running example's
// injection path end to end: payload write, handler overwrite, trigger.
func BenchmarkVenomInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEnv(b, hv.Version413(), campaign.ModeInjection)
		fdc, err := device.New(e.HV, e.Dom0, e.Attacker.Domain().ID())
		if err != nil {
			b.Fatal(err)
		}
		o := device.RunVenomInjection(fdc, e.Attacker, e.Injector)
		if o.Err != nil || !o.Escalated {
			b.Fatalf("venom injection failed: %v", o.Err)
		}
	}
}

// BenchmarkTxstoreTransfer measures one journaled transfer of the tenant
// database (guest-memory reads/writes through real page walks).
func BenchmarkTxstoreTransfer(b *testing.B) {
	e := benchEnv(b, hv.Version413(), campaign.ModeInjection)
	s, err := txstore.New(e.Attacker, 8, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Transfer(i%8, (i+1)%8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxstoreACIDAudit measures the full consistency audit.
func BenchmarkTxstoreACIDAudit(b *testing.B) {
	e := benchEnv(b, hv.Version413(), campaign.ModeInjection)
	s, err := txstore.New(e.Attacker, 8, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Check(8 * 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTLB measures guest memory access with and without the
// translation cache: the simulator-level analogue of the hardware TLB's
// value, and the knob WithTLBCapacity exposes.
func BenchmarkAblationTLB(b *testing.B) {
	run := func(b *testing.B, capacity int) {
		mem, err := mm.NewMemory(2048)
		if err != nil {
			b.Fatal(err)
		}
		h, err := hv.New(mem, hv.Version48(), hv.WithTLBCapacity(capacity))
		if err != nil {
			b.Fatal(err)
		}
		d, err := h.CreateDomain("guest01", 64, false)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 8)
		va := d.PhysmapVA(5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.VCPU().ReadVirt(va, buf, true); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("tlb-64", func(b *testing.B) { run(b, 64) })
	b.Run("tlb-off", func(b *testing.B) { run(b, 0) })
}

// BenchmarkWorkload measures the mixed guest workload's throughput over
// one persistent session.
func BenchmarkWorkload(b *testing.B) {
	e := benchEnv(b, hv.Version413(), campaign.ModeInjection)
	session, err := workload.NewSession(e.Guests[1])
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.Config{Ops: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := session.Run(cfg)
		if res.Stopped {
			b.Fatal(res.StopReason)
		}
	}
}

// BenchmarkAvailabilityExperiment measures the full availability-under-
// injection experiment on one version.
func BenchmarkAvailabilityExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := campaign.AvailabilityUnderInjection(hv.Version413(), workload.Config{Ops: 40, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
