// Crossversion: the paper's security-assessment workflow (RQ2/RQ3).
// The same four erroneous states are injected into every hypervisor
// version; comparing which versions suffer the security violation and
// which handle the state yields the security comparison of Section VIII
// — the scenario the paper motivates of a provider evaluating
// alternative systems or configurations against intrusions.
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Injection campaign across versions (fresh environment per run):")
	fmt.Println()
	type cell struct{ errState, secViol, handled bool }
	results := make(map[string]map[string]cell)

	for _, v := range hv.Versions() {
		for _, s := range exploits.Scenarios() {
			res, err := campaign.Run(v, s.Name, campaign.ModeInjection)
			if err != nil {
				log.Fatalf("%s on %s: %v", s.Name, v.Name, err)
			}
			if results[s.Name] == nil {
				results[s.Name] = make(map[string]cell)
			}
			results[s.Name][v.Name] = cell{
				errState: res.Verdict.ErroneousState,
				secViol:  res.Verdict.SecurityViolation,
				handled:  res.Verdict.Handled,
			}
		}
	}

	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no "
	}
	fmt.Printf("%-16s", "use case")
	for _, v := range hv.Versions() {
		fmt.Printf(" | %-7s state viol", v.Name)
	}
	fmt.Println()
	for _, s := range exploits.Scenarios() {
		fmt.Printf("%-16s", s.Name)
		for _, v := range hv.Versions() {
			c := results[s.Name][v.Name]
			fmt.Printf(" |         %s   %s", mark(c.errState), mark(c.secViol))
		}
		fmt.Println()
	}

	// The assessment conclusion of Section VIII.
	fmt.Println()
	handled := 0
	for _, s := range exploits.Scenarios() {
		if results[s.Name]["4.13"].handled {
			handled++
			fmt.Printf("Xen 4.13 handles the %s erroneous state (4.6/4.8 do not)\n", s.Name)
		}
	}
	fmt.Printf("\nassessment: 4.13 tolerates %d of 4 injected states -> a measurably "+
		"different security level,\nlater attributable to the XSA-213..315 "+
		"follow-up hardening (Section VIII).\n", handled)
}
