// Fieldstudy: classify the 100-advisory dataset of Section IV-D into
// abusive functionalities and print Table I, then show how one advisory
// maps to an intrusion model — the pipeline from field data to
// injectable erroneous states.
package main

import (
	"fmt"
	"log"

	"repro/internal/fieldstudy"
	"repro/internal/inject"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	ds := fieldstudy.Dataset()
	table := fieldstudy.Classify(ds)
	if err := table.Verify(); err != nil {
		log.Fatalf("classification does not match the paper: %v", err)
	}
	fmt.Println(report.TableI(table))

	// Secondary breakdowns (the extended-study direction of §IV-D).
	fmt.Println(fieldstudy.Analyze(ds).Summary())

	// Show the paper's two multi-functionality examples.
	fmt.Println("Multi-functionality advisories cited by the paper:")
	for _, a := range ds {
		if a.CVE == "CVE-2019-17343" || a.CVE == "CVE-2020-27672" {
			fmt.Printf("  %s (%s): %s\n", a.CVE, a.XSA, a.Title)
			for _, f := range a.Functionalities {
				fmt.Printf("    -> %s [%s]\n", f, f.Class())
			}
		}
	}

	// From classification to intrusion model: the study's output is what
	// the injection campaigns consume.
	fmt.Println("\nIntrusion models derived for the evaluated use cases (Table II):")
	for _, m := range inject.UseCaseModels() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("\nExtension models covering further Table I classes:")
	for _, m := range inject.ExtensionModels() {
		fmt.Printf("  %s\n", m)
	}
}
