// Acid: the Section III-C assessment — a transactional tenant database
// runs inside a guest while erroneous states are injected at the
// hypervisor level, and an ACID audit classifies the damage per
// corruption target. The table this prints is the kind of evidence a
// provider uses to decide which intrusion effects its stack must detect
// for business-critical tenants.
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/hv"
	"repro/internal/txstore"
)

const (
	accounts = 8
	initial  = 1000
	total    = accounts * initial
)

func main() {
	log.SetFlags(0)
	fmt.Println("Tenant transactional store under hypervisor-level intrusion (Xen 4.13):")
	fmt.Println()
	fmt.Printf("%-24s %-10s %-30s %s\n", "corruption target", "detected", "classification", "audit detail")
	fmt.Println("--------------------------------------------------------------------------------------------")

	for _, target := range txstore.AllTargets() {
		env, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
		if err != nil {
			log.Fatal(err)
		}
		store, err := txstore.New(env.Attacker, accounts, initial)
		if err != nil {
			log.Fatal(err)
		}
		// A healthy workload before the intrusion.
		for i := 0; i < 5; i++ {
			if err := store.Transfer(i%accounts, (i+1)%accounts, 50); err != nil {
				log.Fatal(err)
			}
		}
		if err := store.InjectCorruption(env.Injector, target); err != nil {
			log.Fatal(err)
		}
		report, err := store.Check(total)
		if err != nil {
			log.Fatal(err)
		}
		detected := "no"
		if report.ChecksumErrors > 0 || !report.MagicIntact || !report.JournalSane {
			detected = "yes"
		}
		fmt.Printf("%-24s %-10s %-30s %v\n", target, detected, report.Classify(), report)
	}
	fmt.Println()
	fmt.Println("The forged-record row is the headline: hypervisor-level intrusions can")
	fmt.Println("violate a tenant's consistency invariants without tripping any of the")
	fmt.Println("application's own integrity checks — only injection campaigns expose it.")
}
