// Assessment: the forward-looking uses of intrusion injection the paper
// sketches in Sections IV-C and IX —
//
//  1. the second injector covering non-memory intrusion models
//     (keep-page-access, interrupt floods, hang states, fatal
//     exceptions), and
//  2. the randomized ("fuzzing-like, post-attack") injection campaign,
//     compared against a hypercall-attack-injection baseline in the
//     style of the related work.
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/report"
	"repro/internal/vnet"

	guestos "repro/internal/guest"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: the state injector on a hardened build ---
	mem, err := mm.NewMemory(2048)
	if err != nil {
		log.Fatal(err)
	}
	h, err := hv.New(mem, hv.Version413())
	if err != nil {
		log.Fatal(err)
	}
	if err := inject.EnableStateOps(h); err != nil {
		log.Fatal(err)
	}
	net := vnet.New()
	attackerDom, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		log.Fatal(err)
	}
	guestos.New(attackerDom, net, "10.3.1.178")
	victimDom, err := h.CreateDomain("guest02", 64, false)
	if err != nil {
		log.Fatal(err)
	}
	guestos.New(victimDom, net, "10.3.1.179")

	sc := inject.NewStateClient(attackerDom)
	fmt.Println("state injector on", h.Version(), "— models:", len(inject.ExtensionModels()))

	leaked, err := sc.KeepPageAccess()
	if err != nil {
		log.Fatal(err)
	}
	pi, err := h.Memory().Info(leaked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  keep-page-access: dom%d retains hv frame %#x (owner dom%d, refs %d)\n",
		attackerDom.ID(), uint64(leaked), pi.Owner, pi.RefCount)

	if err := sc.InterruptFlood(victimDom.ID(), 0, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  interrupt-flood: victim %s has %d unsolicited pending events\n",
		victimDom.Name(), victimDom.PendingEvents())

	// The hang and fatal states are demonstrated on a scratch build so
	// this one stays alive.
	mem2, _ := mm.NewMemory(512)
	h2, err := hv.New(mem2, hv.Version413())
	if err != nil {
		log.Fatal(err)
	}
	if err := inject.EnableStateOps(h2); err != nil {
		log.Fatal(err)
	}
	d2, err := h2.CreateDomain("guest01", 64, false)
	if err != nil {
		log.Fatal(err)
	}
	sc2 := inject.NewStateClient(d2)
	if err := sc2.FatalException("arch/x86/traps.c:911"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fatal-exception: scratch hypervisor panicked: %q\n", h2.CrashReason())

	// --- Part 2: randomized campaign vs hypercall-attack baseline ---
	fmt.Println()
	cmp, err := campaign.CompareWithBaseline(hv.Version413(), 60, 2023)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.BaselineComparison(cmp))
}
