// Pagetable-attack: a side-by-side walkthrough of the XSA-148 use case
// in both modes. The original PoC exploits the missing L2 PSE check on
// Xen 4.6; the injection script induces the same guest-writable
// superpage entry on 4.13, where the vulnerability never existed. The
// example then audits the page-table state directly, showing what
// "injecting the same erroneous state" means at the PTE level.
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/pagetable"
)

func runCase(v hv.Version, mode campaign.Mode) {
	e, err := campaign.NewEnvironment(v, mode)
	if err != nil {
		log.Fatal(err)
	}
	senv, err := e.ScenarioEnv(mode)
	if err != nil {
		log.Fatal(err)
	}
	scen, err := exploits.ScenarioByName("XSA-148-priv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== XSA-148-priv, %s mode, Xen %s ===\n", mode, v.Name)
	o := scen.Run(senv)
	for _, l := range o.Log {
		fmt.Println("  " + l)
	}
	if o.Err != nil {
		fmt.Printf("  [script stopped: %v]\n", o.Err)
	}

	// Audit the erroneous state at the page-table level.
	if o.Artifacts.WindowPTEAddr != 0 {
		entry, err := pagetable.ReadEntry(e.HV.Memory(),
			o.Artifacts.WindowPTEAddr.Frame(),
			int(o.Artifacts.WindowPTEAddr.Offset()/pagetable.EntrySize))
		if err == nil {
			fmt.Printf("  audit: guest L2 window entry = %v\n", entry)
			if entry.Present() && entry.Superpage() && entry.Writable() {
				fmt.Println("  audit: guest holds a writable 2 MiB window over machine memory")
			} else {
				fmt.Println("  audit: no superpage window present (validation rejected it)")
			}
		}
	}
	verdict := monitor.Assess(e.HV, e.Guests, o)
	fmt.Println("  " + verdict.String())
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	// The vulnerable baseline: the PoC as published.
	runCase(hv.Version46(), campaign.ModeExploit)
	// The same PoC against the fixed validation: kernel exception.
	runCase(hv.Version413(), campaign.ModeExploit)
	// The injection script: same erroneous state on the fixed version,
	// and — because the vDSO is a data page that the 4.13 hardening does
	// not protect — the same privilege escalation (Table III row 3).
	runCase(hv.Version413(), campaign.ModeInjection)
}
