// Venom: the paper's Section III running example, end to end. The
// XSA-133 (VENOM) buffer overflow in the emulated floppy disk controller
// corrupts the device model's memory; the intrusion injector induces the
// identical erroneous state — "overwriting the FDC request handler
// method" — on versions where the overflow is patched, and an ordinary
// I/O request then triggers the same guest escape.
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/vnet"
)

type stack struct {
	h        *hv.Hypervisor
	dom0     *guest.Kernel
	attacker *guest.Kernel
	fdc      *device.FDC
	injector *inject.Client
}

func build(v hv.Version, withInjector bool) (*stack, error) {
	mem, err := mm.NewMemory(2048)
	if err != nil {
		return nil, err
	}
	h, err := hv.New(mem, v)
	if err != nil {
		return nil, err
	}
	if withInjector {
		if err := inject.Enable(h); err != nil {
			return nil, err
		}
	}
	net := vnet.New()
	d0, err := h.CreateDomain("xen3", 64, true)
	if err != nil {
		return nil, err
	}
	dom0 := guest.New(d0, net, "10.3.1.1")
	ad, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		return nil, err
	}
	attacker := guest.New(ad, net, "10.3.1.181")
	fdc, err := device.New(h, dom0, ad.ID())
	if err != nil {
		return nil, err
	}
	s := &stack{h: h, dom0: dom0, attacker: attacker, fdc: fdc}
	if withInjector {
		s.injector = inject.NewClient(ad)
	}
	return s, nil
}

func show(o *device.VenomOutcome) {
	fmt.Printf("=== VENOM %s mode on Xen %s ===\n", o.Mode, o.Version)
	for _, l := range o.Log {
		fmt.Println("  " + l)
	}
	if o.Err != nil {
		fmt.Printf("  [attack stopped: %v]\n", o.Err)
	}
	fmt.Printf("  erroneous state: %v, guest escape: %v\n\n", o.ErroneousState, o.Escalated)
}

func main() {
	log.SetFlags(0)
	// The real overflow on the vulnerable stack.
	s, err := build(hv.Version46(), false)
	if err != nil {
		log.Fatal(err)
	}
	show(device.RunVenomExploit(s.fdc, s.attacker))

	// The same attack against the patched device model: rejected.
	s, err = build(hv.Version413(), false)
	if err != nil {
		log.Fatal(err)
	}
	show(device.RunVenomExploit(s.fdc, s.attacker))

	// The injection: same erroneous state, same escape, no vulnerability.
	s, err = build(hv.Version413(), true)
	if err != nil {
		log.Fatal(err)
	}
	show(device.RunVenomInjection(s.fdc, s.attacker, s.injector))
}
