// Quickstart: boot a hypervisor with the injector compiled in, create a
// guest, inject one memory-corruption erroneous state, and read the
// monitor's verdict. This is the minimal end-to-end tour of the public
// surface: hv (the system under test), inject (the contribution),
// exploits (the injection script), and monitor (the oracle).
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
)

func main() {
	log.SetFlags(0)

	// 1. Build the standard experimental environment on a hardened
	// hypervisor (Xen 4.13 profile) with the injector hypercall added to
	// its dispatch table.
	env, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s with %d domains; injector ready\n",
		env.HV.Version(), env.HV.Domains())

	// 2. Use the injector directly: read the IDT descriptor for the
	// page-fault vector through its linear address — something no guest
	// could do through legitimate interfaces.
	idt := env.HV.IDTR()
	val, err := env.Injector.ReadLinear64(idt.DescriptorAddr(14))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IDT #PF descriptor (low word) = %#x\n", val)

	// 3. Run a full injection script: the XSA-182 erroneous state
	// (writable recursive page-table mapping) on a version where the
	// vulnerability does not exist.
	scen, err := exploits.ScenarioByName("XSA-182-test")
	if err != nil {
		log.Fatal(err)
	}
	senv, err := env.ScenarioEnv(campaign.ModeInjection)
	if err != nil {
		log.Fatal(err)
	}
	outcome := scen.Run(senv)
	fmt.Println("\ninjection transcript:")
	for _, line := range outcome.Log {
		fmt.Println("  " + line)
	}

	// 4. Ask the monitor what actually happened.
	verdict := monitor.Assess(env.HV, env.Guests, outcome)
	fmt.Println("\nverdict:", verdict)
	for _, e := range verdict.Evidence {
		fmt.Println("  evidence:", e)
	}
	if verdict.Handled {
		fmt.Println("\nthe hardened version handled the injected state — the Table III shield")
	}
}
