package repro

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildCLIs compiles the command-line tools once per test binary.
func buildCLIs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"repro", "xsalab", "iinject", "tracecheck", "benchdiff"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

// TestCLISmoke exercises the shipped binaries end to end: the artifact a
// user actually runs, not just the libraries underneath.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCLIs(t)
	tests := []struct {
		name string
		tool string
		args []string
		want []string
	}{
		{"table2", "repro", []string{"-table", "2"}, []string{"TABLE II", "Write Page Table Entries"}},
		{"fig3", "repro", []string{"-figure", "3"}, []string{"equivalence", "true"}},
		{"score", "repro", []string{"-score"}, []string{"SECURITY BENCHMARK", "0.18"}},
		{"matrix-parallel", "repro", []string{"-matrix", "-workers", "4"}, []string{"FULL CAMPAIGN MATRIX", "4.13"}},
		{"xsalab", "xsalab", []string{"-version", "4.8", "-case", "XSA-182-test"}, []string{"not vulnerable", "err-state=no"}},
		{"iinject", "iinject", []string{"-version", "4.13", "-case", "XSA-182-test"}, []string{"handled by the system"}},
		{"iinject-models", "iinject", []string{"-models"}, []string{"Guest-Writable Page Table Entry", "grant-status-leak"}},
		{"iinject-ext", "iinject", []string{"-case", "interrupt-flood"}, []string{"unconsumed events"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := exec.Command(filepath.Join(dir, tt.tool), tt.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tt.tool, tt.args, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}

	// Out-of-range flag values die with a one-line usage error before
	// any experiment (or profile file) is started.
	t.Run("usage-errors", func(t *testing.T) {
		usage := []struct {
			args []string
			want string
		}{
			{[]string{"-table", "5"}, "-table: want 1..3"},
			{[]string{"-figure", "9"}, "-figure: want 1..4"},
			{[]string{"-fuzz", "-1"}, "-fuzz: want a positive trial count"},
			{[]string{"-workers", "-2", "-matrix"}, "-workers: want 0 (one per CPU) or a positive pool size"},
			{[]string{"-serve", "-matrix"}, "-serve: requires -listen"},
		}
		for _, u := range usage {
			out, err := exec.Command(filepath.Join(dir, "repro"), u.args...).CombinedOutput()
			if err == nil {
				t.Errorf("repro %v exited 0, want a usage error", u.args)
			}
			if !strings.Contains(string(out), u.want) {
				t.Errorf("repro %v output missing %q:\n%s", u.args, u.want, out)
			}
		}
	})

	// A seeded chaos campaign: the process survives injected substrate
	// faults, and -continue-on-error renders their classifications.
	t.Run("chaos", func(t *testing.T) {
		// Chaos runs dump flight-<cell>.jsonl into the working directory;
		// run them in a scratch dir so the dumps land there, then check
		// the dumps themselves.
		scratch := t.TempDir()
		chaosCmd := func(args ...string) *exec.Cmd {
			cmd := exec.Command(filepath.Join(dir, "repro"), args...)
			cmd.Dir = scratch
			return cmd
		}
		out, err := chaosCmd("-matrix", "-chaos", "7", "-continue-on-error", "-workers", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("chaos matrix died: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "cell failed (") {
			t.Errorf("chaos matrix shows no failed-cell classification:\n%s", out)
		}
		// The flight recorder left each failed cell's event ring behind.
		if !strings.Contains(string(out), "flight recorder: dumped flight-") {
			t.Errorf("chaos matrix reports no flight dumps:\n%s", out)
		}
		dumps, err := filepath.Glob(filepath.Join(scratch, "flight-*.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(dumps) == 0 {
			t.Error("chaos matrix wrote no flight-*.jsonl dumps")
		}
		for _, dump := range dumps {
			out, err := exec.Command(filepath.Join(dir, "tracecheck"), "diff", dump, dump).CombinedOutput()
			if err != nil {
				t.Errorf("flight dump %s does not parse as a trace: %v\n%s", dump, err, out)
			}
		}
		// Default mode surfaces the first injected fault as an error exit.
		out, err = chaosCmd("-matrix", "-chaos", "7").CombinedOutput()
		if err == nil {
			t.Error("chaos matrix without -continue-on-error exited 0")
		}
		if !strings.Contains(string(out), "injected") {
			t.Errorf("default-mode chaos error does not name the injected fault:\n%s", out)
		}
		out, err = chaosCmd("-json", "-chaos", "7", "-continue-on-error").CombinedOutput()
		if err != nil {
			t.Fatalf("chaos json export died: %v\n%s", err, out)
		}
		for _, want := range []string{`"fault_plan_seed": 7`, `"continue_on_error": true`, `"error"`} {
			if !strings.Contains(string(out), want) {
				t.Errorf("chaos artifact missing %q", want)
			}
		}
	})

	// Profiles flush on error exits: the old code path log.Fatal'd past
	// the deferred pprof stop, leaving empty or missing profile files.
	t.Run("flush-on-error", func(t *testing.T) {
		tmp := t.TempDir()
		cpu := filepath.Join(tmp, "cpu.pprof")
		mem := filepath.Join(tmp, "mem.pprof")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/no-such-case/injection", "-cpuprofile", cpu, "-memprofile", mem).CombinedOutput()
		if err == nil {
			t.Fatalf("bogus cell exited 0:\n%s", out)
		}
		for _, p := range []string{cpu, mem} {
			st, err := os.Stat(p)
			if err != nil {
				t.Errorf("profile %s not written on error exit: %v", p, err)
				continue
			}
			if st.Size() == 0 {
				t.Errorf("profile %s is empty on error exit", p)
			}
		}
	})

	// SIGINT terminates a campaign promptly instead of wedging it.
	t.Run("interrupt", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		cmd := exec.Command(filepath.Join(dir, "repro"), "-matrix", "-workers", "1", "-trace", trace)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			// Either outcome is fine — completed before the signal, or
			// interrupted and flushed — as long as it terminated.
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatal("repro did not terminate after SIGINT")
		}
	})

	// Trace diffing end to end: a trace is identical to itself, and a
	// duplicated effect event is flagged divergent with line evidence
	// and a non-zero exit.
	t.Run("tracecheck-diff", func(t *testing.T) {
		tmp := t.TempDir()
		a := filepath.Join(tmp, "a.jsonl")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/XSA-182-test/exploit", "-trace", a).CombinedOutput()
		if err != nil {
			t.Fatalf("generating trace: %v\n%s", err, out)
		}
		raw, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		b := filepath.Join(tmp, "b.jsonl")
		if err := os.WriteFile(b, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "diff", a, b).CombinedOutput()
		if err != nil {
			t.Fatalf("identical traces graded non-zero: %v\n%s", err, out)
		}
		for _, want := range []string{"identical", "ok: 1 cells compared"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("diff output missing %q:\n%s", want, out)
			}
		}

		// Duplicate one scenario_step (an effect event) at the end of b:
		// the injected extra effect must diverge the cell.
		var step string
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.Contains(line, `"kind":"scenario_step"`) {
				step = line
				break
			}
		}
		if step == "" {
			t.Fatal("trace has no scenario_step event")
		}
		if err := os.WriteFile(b, append(raw, []byte(step+"\n")...), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "diff", a, b).CombinedOutput()
		if err == nil {
			t.Fatalf("perturbed trace graded equivalent:\n%s", out)
		}
		for _, want := range []string{"DIVERGENT", "first divergence at effect index"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("divergent diff output missing %q:\n%s", want, out)
			}
		}
	})

	// A malformed JSONL line fails validation non-zero and names the
	// offending line.
	t.Run("tracecheck-malformed", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.jsonl")
		content := `{"cell":"4.6/x/exploit","kind":"scenario_step"}` + "\n{not json\n"
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(filepath.Join(dir, "tracecheck"), bad).CombinedOutput()
		if err == nil {
			t.Fatalf("malformed trace validated clean:\n%s", out)
		}
		if !strings.Contains(string(out), "line 2") {
			t.Errorf("error does not name line 2:\n%s", out)
		}
	})

	// The RQ2 equivalence engine over the live matrix: every cell must
	// grade trace-equivalent.
	t.Run("equivalence", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-equivalence", "-workers", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -equivalence: %v\n%s", err, out)
		}
		for _, want := range []string{"TRACE EQUIVALENCE (RQ2)", "51/51 cells trace-equivalent", "state-audit"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("equivalence output missing %q:\n%s", want, out)
			}
		}
	})

	// -listen wires the observability server into a campaign run and
	// logs the bound address.
	t.Run("listen", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-listen", "127.0.0.1:0", "-workers", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -matrix -listen: %v\n%s", err, out)
		}
		for _, want := range []string{"observability server on http://127.0.0.1:", "FULL CAMPAIGN MATRIX"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("listen output missing %q:\n%s", want, out)
			}
		}
	})

	// Causal spans end to end: a matrix run with -spans renders the span
	// summary (critical path + RQ3 latency table) and writes a Chrome
	// trace-event file that tracecheck's spans mode validates.
	t.Run("spans", func(t *testing.T) {
		spans := filepath.Join(t.TempDir(), "spans.json")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "4", "-spans", spans).CombinedOutput()
		if err != nil {
			t.Fatalf("repro -matrix -spans: %v\n%s", err, out)
		}
		for _, want := range []string{
			"FULL CAMPAIGN MATRIX",
			"CAUSAL SPAN SUMMARY (virtual time, events)",
			"critical path: makespan=",
			"DETECTION LATENCY (RQ3)",
			"wrote span trace to",
		} {
			if !strings.Contains(string(out), want) {
				t.Errorf("spans output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "spans", spans).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck spans: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok:") || !strings.Contains(string(out), "102 cells") {
			t.Errorf("tracecheck spans output = %s, want ok across 102 cells", out)
		}
	})

	// benchdiff: equal artifacts pass, a blown threshold names the
	// regression and exits non-zero.
	t.Run("benchdiff", func(t *testing.T) {
		tmp := t.TempDir()
		mk := func(name, nsOld string) string {
			p := filepath.Join(tmp, name)
			content := `{"Action":"output","Output":"BenchmarkFullMatrix-8   \t"}` + "\n" +
				`{"Action":"output","Output":"       5\t` + nsOld + ` ns/op\t1024 B/op\t7 allocs/op\n"}` + "\n"
			if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}
		old := mk("old.json", "100000")
		out, err := exec.Command(filepath.Join(dir, "benchdiff"), old, old).CombinedOutput()
		if err != nil {
			t.Fatalf("self-diff failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok: no benchmark regressed") {
			t.Errorf("self-diff output missing ok line:\n%s", out)
		}
		slow := mk("new.json", "300000")
		out, err = exec.Command(filepath.Join(dir, "benchdiff"), old, slow).CombinedOutput()
		if err == nil {
			t.Fatalf("3x regression passed the default 1.25x threshold:\n%s", out)
		}
		for _, want := range []string{"REGRESSED", "BenchmarkFullMatrix-8", "1 benchmark(s) regressed"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("regression output missing %q:\n%s", want, out)
			}
		}
		// A loose threshold lets the same pair pass.
		if out, err := exec.Command(filepath.Join(dir, "benchdiff"),
			"-threshold", "4.0", old, slow).CombinedOutput(); err != nil {
			t.Errorf("3x growth failed a 4.0x threshold: %v\n%s", err, out)
		}
	})

	// The run ledger end to end: a journaled campaign, a no-op resume, the
	// tracecheck runs surface, and an interrupted run resumed from its
	// journal.
	t.Run("ledger", func(t *testing.T) {
		store := filepath.Join(t.TempDir(), "runs")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "4", "-ledger", store).CombinedOutput()
		if err != nil {
			t.Fatalf("repro -ledger: %v\n%s", err, out)
		}
		for _, want := range []string{"FULL CAMPAIGN MATRIX", "settled 102/102 cells (record digest "} {
			if !strings.Contains(string(out), want) {
				t.Errorf("ledger output missing %q:\n%s", want, out)
			}
		}

		// A same-config resume finds everything recorded and reruns nothing.
		out, err = exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-ledger", store, "-resume").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -resume: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "102 cells reused, 0 to execute") {
			t.Errorf("no-op resume output:\n%s", out)
		}

		// tracecheck runs: list the store, show the record, self-diff clean.
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "runs", "list", store).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck runs list: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "102/102 cells  settled") {
			t.Errorf("runs list output:\n%s", out)
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "runs", "show", store).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck runs show: %v\n%s", err, out)
		}
		for _, want := range []string{"102 settled of 102 expected, 0 failed", "rq2=", "cov="} {
			if !strings.Contains(string(out), want) {
				t.Errorf("runs show output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "runs", "diff", store, store).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck runs diff: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "no differences") {
			t.Errorf("self runs diff:\n%s", out)
		}

		// Flag validation: -resume requires -ledger; live captures refuse.
		out, err = exec.Command(filepath.Join(dir, "repro"), "-resume").CombinedOutput()
		if err == nil || !strings.Contains(string(out), "-resume: requires -ledger") {
			t.Errorf("bare -resume: err=%v output:\n%s", err, out)
		}
		out, err = exec.Command(filepath.Join(dir, "repro"),
			"-ledger", store, "-trace", "x.jsonl").CombinedOutput()
		if err == nil || !strings.Contains(string(out), "cannot merge") {
			t.Errorf("-ledger -trace: err=%v output:\n%s", err, out)
		}

		// SIGINT mid-campaign, then resume: the journal carries the settled
		// cells and the merged record settles the full matrix.
		scratch := filepath.Join(t.TempDir(), "runs")
		cmd := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "1", "-ledger", scratch)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
		_ = cmd.Process.Signal(os.Interrupt)
		_ = cmd.Wait() // either interrupted or already complete; both resume cleanly
		out, err = exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "4", "-ledger", scratch, "-resume").CombinedOutput()
		if err != nil {
			t.Fatalf("resume after SIGINT: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "settled 102/102 cells") {
			t.Errorf("resumed run did not settle the full matrix:\n%s", out)
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "runs", "diff",
			store, scratch).CombinedOutput()
		if err != nil {
			t.Fatalf("cross-store diff after resume: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "no differences") {
			t.Errorf("resumed record differs from the uninterrupted one:\n%s", out)
		}
	})

	// The observability pipeline end to end: one profiled cell, a JSONL
	// trace on disk, the metrics summary, and tracecheck's validation.
	t.Run("trace-and-metrics", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "cell.jsonl")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/XSA-148-priv/injection", "-trace", trace, "-metrics").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -cell -trace -metrics: %v\n%s", err, out)
		}
		for _, want := range []string{"CAMPAIGN TELEMETRY SUMMARY", "hypercall.arbitrary_access", "cell.wall_ns"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("metrics output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), trace).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok:") {
			t.Errorf("tracecheck output missing ok: %s", out)
		}
	})

	// The wall schedule end to end: -schedule writes a Perfetto-loadable
	// trace plus prints the occupancy summary, tracecheck's sched mode
	// validates it, and -log emits parseable JSON lines with the run ID.
	t.Run("sched-and-log", func(t *testing.T) {
		tmp := t.TempDir()
		sched := filepath.Join(tmp, "sched.json")
		logFile := filepath.Join(tmp, "run.log")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "4", "-schedule", sched, "-log", logFile).CombinedOutput()
		if err != nil {
			t.Fatalf("repro -matrix -schedule -log: %v\n%s", err, out)
		}
		for _, want := range []string{"WALL SCHEDULE SUMMARY", "utilization:", "wall critical path:", "FULL CAMPAIGN MATRIX"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("schedule output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), "sched", sched).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck sched: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok: 102 cells across 4 worker tracks") {
			t.Errorf("tracecheck sched output missing the ok line:\n%s", out)
		}
		raw, err := os.ReadFile(logFile)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 2 {
			t.Fatalf("log file carries %d lines, want at least the start/done pair:\n%s", len(lines), raw)
		}
		sawDone := false
		for i, line := range lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("log line %d is not JSON: %v\n%s", i+1, err, line)
			}
			if id, _ := rec["run_id"].(string); id == "" {
				t.Fatalf("log line %d has no run_id: %s", i+1, line)
			}
			if rec["msg"] == "campaign done" {
				sawDone = true
			}
		}
		if !sawDone {
			t.Errorf("log file never recorded campaign done:\n%s", raw)
		}
	})

	// The live observability surface: -serve keeps the server up after
	// the campaign, /events replays the retained stream over SSE,
	// /schedule reports the worker occupancy, pprof is mounted, and
	// Ctrl-C shuts the whole thing down cleanly.
	t.Run("serve-endpoints", func(t *testing.T) {
		tmp := t.TempDir()
		stderrFile := filepath.Join(tmp, "stderr.txt")
		ef, err := os.Create(stderrFile)
		if err != nil {
			t.Fatal(err)
		}
		defer ef.Close()
		cmd := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-workers", "4", "-listen", "127.0.0.1:0", "-serve")
		cmd.Stdout = ef
		cmd.Stderr = ef
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		// The bound address is logged as soon as the listener is up.
		addrRE := regexp.MustCompile(`observability server on http://(127\.0\.0\.1:\d+)`)
		var base string
		deadline := time.Now().Add(30 * time.Second)
		for base == "" {
			if time.Now().After(deadline) {
				raw, _ := os.ReadFile(stderrFile)
				t.Fatalf("server address never logged:\n%s", raw)
			}
			raw, _ := os.ReadFile(stderrFile)
			if m := addrRE.FindSubmatch(raw); m != nil {
				base = "http://" + string(m[1])
			} else {
				time.Sleep(20 * time.Millisecond)
			}
		}
		// Wait for the campaign itself to finish so the stream is fully
		// retained and the schedule is final; -serve keeps everything up.
		for {
			if time.Now().After(deadline) {
				raw, _ := os.ReadFile(stderrFile)
				t.Fatalf("campaign never reported completion:\n%s", raw)
			}
			raw, _ := os.ReadFile(stderrFile)
			if strings.Contains(string(raw), "still serving") {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}

		// /events with Last-Event-ID: 0 replays the whole retained run.
		func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "GET", base+"/events", nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Last-Event-ID", "0")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("GET /events: %v", err)
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
				t.Fatalf("/events Content-Type = %q", ct)
			}
			var starts, finishes int
			sawDone := false
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() && !sawDone {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: cell_started"):
					starts++
				case strings.HasPrefix(line, "event: cell_finished"):
					finishes++
				case strings.HasPrefix(line, "event: campaign_done"):
					sawDone = true
				}
			}
			if !sawDone {
				t.Fatalf("replay never reached campaign_done (starts %d finishes %d): %v", starts, finishes, sc.Err())
			}
			if starts != 102 || finishes != 102 {
				t.Errorf("replayed %d starts / %d finishes, want 102/102", starts, finishes)
			}
		}()

		// /schedule reports the finished run's occupancy.
		resp, err := http.Get(base + "/schedule")
		if err != nil {
			t.Fatalf("GET /schedule: %v", err)
		}
		var s struct {
			Total     int `json:"total"`
			Completed int `json:"completed"`
			Workers   []struct {
				Cells int `json:"cells"`
			} `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/schedule decode: %v", err)
		}
		if s.Total != 102 || s.Completed != 102 || len(s.Workers) != 4 {
			t.Errorf("/schedule = total %d completed %d workers %d, want 102/102/4", s.Total, s.Completed, len(s.Workers))
		}

		// pprof and the runtime gauges are mounted.
		resp, err = http.Get(base + "/debug/pprof/")
		if err != nil {
			t.Fatalf("GET /debug/pprof/: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
		}
		resp, err = http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range []string{"repro_events_published_total", "repro_sched_utilization", "repro_go_goroutines"} {
			if !strings.Contains(string(raw), want) {
				t.Errorf("/metrics missing %q", want)
			}
		}

		// Ctrl-C tears the server down and the process exits cleanly.
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				raw, _ := os.ReadFile(stderrFile)
				t.Fatalf("repro -serve exited with %v after SIGINT:\n%s", err, raw)
			}
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatal("repro -serve did not exit after SIGINT")
		}
	})
}
