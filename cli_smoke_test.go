package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCLIs compiles the three command-line tools once per test binary.
func buildCLIs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"repro", "xsalab", "iinject", "tracecheck"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

// TestCLISmoke exercises the shipped binaries end to end: the artifact a
// user actually runs, not just the libraries underneath.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCLIs(t)
	tests := []struct {
		name string
		tool string
		args []string
		want []string
	}{
		{"table2", "repro", []string{"-table", "2"}, []string{"TABLE II", "Write Page Table Entries"}},
		{"fig3", "repro", []string{"-figure", "3"}, []string{"equivalence", "true"}},
		{"score", "repro", []string{"-score"}, []string{"SECURITY BENCHMARK", "0.50"}},
		{"matrix-parallel", "repro", []string{"-matrix", "-workers", "4"}, []string{"FULL CAMPAIGN MATRIX", "4.13"}},
		{"xsalab", "xsalab", []string{"-version", "4.8", "-case", "XSA-182-test"}, []string{"not vulnerable", "err-state=no"}},
		{"iinject", "iinject", []string{"-version", "4.13", "-case", "XSA-182-test"}, []string{"handled by the system"}},
		{"iinject-models", "iinject", []string{"-models"}, []string{"Guest-Writable Page Table Entry", "grant-status-leak"}},
		{"iinject-ext", "iinject", []string{"-case", "interrupt-flood"}, []string{"unconsumed events"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := exec.Command(filepath.Join(dir, tt.tool), tt.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tt.tool, tt.args, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}

	// Out-of-range flag values die with a one-line usage error before
	// any experiment (or profile file) is started.
	t.Run("usage-errors", func(t *testing.T) {
		usage := []struct {
			args []string
			want string
		}{
			{[]string{"-table", "5"}, "-table: want 1..3"},
			{[]string{"-figure", "9"}, "-figure: want 1..4"},
			{[]string{"-fuzz", "-1"}, "-fuzz: want a positive trial count"},
			{[]string{"-workers", "-2", "-matrix"}, "-workers: want 0 (one per CPU) or a positive pool size"},
		}
		for _, u := range usage {
			out, err := exec.Command(filepath.Join(dir, "repro"), u.args...).CombinedOutput()
			if err == nil {
				t.Errorf("repro %v exited 0, want a usage error", u.args)
			}
			if !strings.Contains(string(out), u.want) {
				t.Errorf("repro %v output missing %q:\n%s", u.args, u.want, out)
			}
		}
	})

	// A seeded chaos campaign: the process survives injected substrate
	// faults, and -continue-on-error renders their classifications.
	t.Run("chaos", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-matrix", "-chaos", "7", "-continue-on-error", "-workers", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("chaos matrix died: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "cell failed (") {
			t.Errorf("chaos matrix shows no failed-cell classification:\n%s", out)
		}
		// Default mode surfaces the first injected fault as an error exit.
		out, err = exec.Command(filepath.Join(dir, "repro"), "-matrix", "-chaos", "7").CombinedOutput()
		if err == nil {
			t.Error("chaos matrix without -continue-on-error exited 0")
		}
		if !strings.Contains(string(out), "injected") {
			t.Errorf("default-mode chaos error does not name the injected fault:\n%s", out)
		}
		out, err = exec.Command(filepath.Join(dir, "repro"),
			"-json", "-chaos", "7", "-continue-on-error").CombinedOutput()
		if err != nil {
			t.Fatalf("chaos json export died: %v\n%s", err, out)
		}
		for _, want := range []string{`"fault_plan_seed": 7`, `"continue_on_error": true`, `"error"`} {
			if !strings.Contains(string(out), want) {
				t.Errorf("chaos artifact missing %q", want)
			}
		}
	})

	// Profiles flush on error exits: the old code path log.Fatal'd past
	// the deferred pprof stop, leaving empty or missing profile files.
	t.Run("flush-on-error", func(t *testing.T) {
		tmp := t.TempDir()
		cpu := filepath.Join(tmp, "cpu.pprof")
		mem := filepath.Join(tmp, "mem.pprof")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/no-such-case/injection", "-cpuprofile", cpu, "-memprofile", mem).CombinedOutput()
		if err == nil {
			t.Fatalf("bogus cell exited 0:\n%s", out)
		}
		for _, p := range []string{cpu, mem} {
			st, err := os.Stat(p)
			if err != nil {
				t.Errorf("profile %s not written on error exit: %v", p, err)
				continue
			}
			if st.Size() == 0 {
				t.Errorf("profile %s is empty on error exit", p)
			}
		}
	})

	// SIGINT terminates a campaign promptly instead of wedging it.
	t.Run("interrupt", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		cmd := exec.Command(filepath.Join(dir, "repro"), "-matrix", "-workers", "1", "-trace", trace)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			// Either outcome is fine — completed before the signal, or
			// interrupted and flushed — as long as it terminated.
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatal("repro did not terminate after SIGINT")
		}
	})

	// The observability pipeline end to end: one profiled cell, a JSONL
	// trace on disk, the metrics summary, and tracecheck's validation.
	t.Run("trace-and-metrics", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "cell.jsonl")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/XSA-148-priv/injection", "-trace", trace, "-metrics").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -cell -trace -metrics: %v\n%s", err, out)
		}
		for _, want := range []string{"CAMPAIGN TELEMETRY SUMMARY", "hypercall.arbitrary_access", "cell.wall_ns"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("metrics output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), trace).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok:") {
			t.Errorf("tracecheck output missing ok: %s", out)
		}
	})
}
