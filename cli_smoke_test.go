package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLIs compiles the three command-line tools once per test binary.
func buildCLIs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"repro", "xsalab", "iinject", "tracecheck"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

// TestCLISmoke exercises the shipped binaries end to end: the artifact a
// user actually runs, not just the libraries underneath.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCLIs(t)
	tests := []struct {
		name string
		tool string
		args []string
		want []string
	}{
		{"table2", "repro", []string{"-table", "2"}, []string{"TABLE II", "Write Page Table Entries"}},
		{"fig3", "repro", []string{"-figure", "3"}, []string{"equivalence", "true"}},
		{"score", "repro", []string{"-score"}, []string{"SECURITY BENCHMARK", "0.50"}},
		{"matrix-parallel", "repro", []string{"-matrix", "-workers", "4"}, []string{"FULL CAMPAIGN MATRIX", "4.13"}},
		{"xsalab", "xsalab", []string{"-version", "4.8", "-case", "XSA-182-test"}, []string{"not vulnerable", "err-state=no"}},
		{"iinject", "iinject", []string{"-version", "4.13", "-case", "XSA-182-test"}, []string{"handled by the system"}},
		{"iinject-models", "iinject", []string{"-models"}, []string{"Guest-Writable Page Table Entry", "grant-status-leak"}},
		{"iinject-ext", "iinject", []string{"-case", "interrupt-flood"}, []string{"unconsumed events"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := exec.Command(filepath.Join(dir, tt.tool), tt.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tt.tool, tt.args, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}

	// The observability pipeline end to end: one profiled cell, a JSONL
	// trace on disk, the metrics summary, and tracecheck's validation.
	t.Run("trace-and-metrics", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "cell.jsonl")
		out, err := exec.Command(filepath.Join(dir, "repro"),
			"-cell", "4.6/XSA-148-priv/injection", "-trace", trace, "-metrics").CombinedOutput()
		if err != nil {
			t.Fatalf("repro -cell -trace -metrics: %v\n%s", err, out)
		}
		for _, want := range []string{"CAMPAIGN TELEMETRY SUMMARY", "hypercall.arbitrary_access", "cell.wall_ns"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("metrics output missing %q:\n%s", want, out)
			}
		}
		out, err = exec.Command(filepath.Join(dir, "tracecheck"), trace).CombinedOutput()
		if err != nil {
			t.Fatalf("tracecheck: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "ok:") {
			t.Errorf("tracecheck output missing ok: %s", out)
		}
	})
}
