package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLIs compiles the three command-line tools once per test binary.
func buildCLIs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"repro", "xsalab", "iinject"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

// TestCLISmoke exercises the shipped binaries end to end: the artifact a
// user actually runs, not just the libraries underneath.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCLIs(t)
	tests := []struct {
		name string
		tool string
		args []string
		want []string
	}{
		{"table2", "repro", []string{"-table", "2"}, []string{"TABLE II", "Write Page Table Entries"}},
		{"fig3", "repro", []string{"-figure", "3"}, []string{"equivalence", "true"}},
		{"score", "repro", []string{"-score"}, []string{"SECURITY BENCHMARK", "0.50"}},
		{"matrix-parallel", "repro", []string{"-matrix", "-workers", "4"}, []string{"FULL CAMPAIGN MATRIX", "4.13"}},
		{"xsalab", "xsalab", []string{"-version", "4.8", "-case", "XSA-182-test"}, []string{"not vulnerable", "err-state=no"}},
		{"iinject", "iinject", []string{"-version", "4.13", "-case", "XSA-182-test"}, []string{"handled by the system"}},
		{"iinject-models", "iinject", []string{"-models"}, []string{"Guest-Writable Page Table Entry", "grant-status-leak"}},
		{"iinject-ext", "iinject", []string{"-case", "interrupt-flood"}, []string{"unconsumed events"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := exec.Command(filepath.Join(dir, tt.tool), tt.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tt.tool, tt.args, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
